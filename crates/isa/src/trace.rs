//! Trace container and the builder code generators use to emit micro-ops.

use crate::{MicroOp, OpClass, Payload, RoccCmd, TraceStats, VReg, VecOpKind, VectorSpec, Vtype};

/// An ordered stream of micro-ops — one kernel's (or one whole solve's)
/// instruction trace for a particular software mapping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Borrows the micro-ops in program order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Appends another trace after this one.
    pub fn extend(&mut self, other: &Trace) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Computes instruction-mix statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_ops(&self.ops)
    }
}

impl FromIterator<MicroOp> for Trace {
    fn from_iter<I: IntoIterator<Item = MicroOp>>(iter: I) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Builder for [`Trace`]s with automatic virtual-register allocation.
///
/// Registers form an SSA-like unbounded namespace. Memory dependence is
/// expressed explicitly: [`TraceBuilder::store`] returns a *token* register
/// that a later [`TraceBuilder::load_after`] can consume, modelling
/// store-to-load forwarding between library calls (the memory round-trip
/// the paper's operator-fusion optimization removes).
#[derive(Debug, Default)]
pub struct TraceBuilder {
    next_reg: u32,
    ops: Vec<MicroOp>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Allocates a fresh virtual register.
    pub fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Emits an arbitrary micro-op (low-level escape hatch).
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Emits a scalar op producing a fresh register.
    pub fn emit(&mut self, class: OpClass, srcs: &[VReg]) -> VReg {
        let dst = self.fresh();
        self.ops.push(MicroOp::scalar(class, Some(dst), srcs));
        dst
    }

    /// Emits a scalar op with no destination (branch, store-like).
    pub fn emit_void(&mut self, class: OpClass, srcs: &[VReg]) {
        self.ops.push(MicroOp::scalar(class, None, srcs));
    }

    /// Emits an FP load with no memory ordering constraint.
    pub fn load(&mut self) -> VReg {
        self.emit(OpClass::Load, &[])
    }

    /// Emits an FP load ordered after the store that produced `token`.
    pub fn load_after(&mut self, token: VReg) -> VReg {
        self.emit(OpClass::Load, &[token])
    }

    /// Emits an FP store of `srcs[0]` (extra sources model address
    /// computation inputs) and returns a memory token for later loads.
    pub fn store(&mut self, srcs: &[VReg]) -> VReg {
        let token = self.fresh();
        let mut op = MicroOp::scalar(OpClass::Store, Some(token), srcs);
        op.class = OpClass::Store;
        self.ops.push(op);
        token
    }

    /// Emits a scalar FP op (`FpAdd`/`FpMul`/`FpFma`/`FpDiv`/`FpSimple`).
    pub fn fp(&mut self, class: OpClass, srcs: &[VReg]) -> VReg {
        debug_assert!(class.is_scalar_fp(), "fp() requires a scalar FP class");
        self.emit(class, srcs)
    }

    /// Emits integer bookkeeping ops (address/index computation). Returns
    /// the last destination so chains can be made dependent if desired.
    pub fn int_ops(&mut self, count: usize) -> Option<VReg> {
        let mut last = None;
        for _ in 0..count {
            last = Some(self.emit(OpClass::IntAlu, &[]));
        }
        last
    }

    /// Emits a branch (loop back-edge / condition).
    pub fn branch(&mut self, srcs: &[VReg]) {
        self.emit_void(OpClass::Branch, srcs);
    }

    /// Emits a `vsetvli` establishing the given vector configuration.
    pub fn vset(&mut self, cfg: Vtype) -> VReg {
        let dst = self.fresh();
        let mut op = MicroOp::scalar(OpClass::VSet, Some(dst), &[]);
        op.payload = Payload::VSet(cfg);
        self.ops.push(op);
        dst
    }

    /// Emits a `vsetvli` for an `f32` configuration.
    pub fn vset_f32(&mut self, vl: u32, lmul: u8) -> VReg {
        self.vset(Vtype::f32(vl, lmul))
    }

    /// Emits a vector op with the given spec and register dependencies.
    pub fn vector(&mut self, spec: VectorSpec, srcs: &[VReg]) -> VReg {
        let dst = self.fresh();
        let mut op = MicroOp::scalar(OpClass::Vector, Some(dst), srcs);
        op.payload = Payload::Vector(spec);
        self.ops.push(op);
        dst
    }

    /// Emits a unit-stride f32 vector load.
    pub fn vload(&mut self, vl: u32, lmul: u8) -> VReg {
        self.vector(VectorSpec::f32(VecOpKind::Load, vl, lmul), &[])
    }

    /// Emits a unit-stride f32 vector store; returns a memory token.
    pub fn vstore(&mut self, vl: u32, lmul: u8, src: VReg) -> VReg {
        self.vector(VectorSpec::f32(VecOpKind::Store, vl, lmul), &[src])
    }

    /// Emits a RoCC command toward the accelerator. `srcs` model the scalar
    /// registers carrying the command operands.
    pub fn rocc(&mut self, cmd: RoccCmd, srcs: &[VReg]) -> VReg {
        let dst = self.fresh();
        let mut op = MicroOp::scalar(OpClass::Rocc, Some(dst), srcs);
        op.payload = Payload::Rocc(cmd);
        self.ops.push(op);
        dst
    }

    /// Emits a full fence (CPU stalls until the accelerator's memory
    /// traffic drains).
    pub fn fence(&mut self) {
        self.ops.push(MicroOp::scalar(OpClass::Fence, None, &[]));
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the build, returning the trace.
    pub fn finish(self) -> Trace {
        Trace { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    #[test]
    fn builder_allocates_unique_registers() {
        let mut b = TraceBuilder::new();
        let r0 = b.fresh();
        let r1 = b.fresh();
        assert_ne!(r0, r1);
    }

    #[test]
    fn store_token_orders_load() {
        let mut b = TraceBuilder::new();
        let x = b.load();
        let token = b.store(&[x]);
        let y = b.load_after(token);
        let t = b.finish();
        assert_eq!(t.len(), 3);
        // The final load depends on the store's token.
        let load = t.ops()[2];
        assert_eq!(load.class, OpClass::Load);
        assert!(load.sources().any(|r| r == token));
        let _ = y;
    }

    #[test]
    fn vector_ops_carry_spec() {
        let mut b = TraceBuilder::new();
        let v = b.vload(12, 4);
        let _ = b.vstore(12, 4, v);
        let t = b.finish();
        match t.ops()[0].payload {
            Payload::Vector(spec) => {
                assert_eq!(spec.vl, 12);
                assert_eq!(spec.lmul, 4);
                assert_eq!(spec.kind, VecOpKind::Load);
            }
            _ => panic!("expected a vector payload"),
        }
    }

    #[test]
    fn traces_concatenate() {
        let mut a = TraceBuilder::new();
        a.load();
        let mut t1 = a.finish();
        let mut b = TraceBuilder::new();
        b.load();
        b.load();
        let t2 = b.finish();
        t1.extend(&t2);
        assert_eq!(t1.len(), 3);
    }
}
