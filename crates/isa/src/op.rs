//! Micro-op vocabulary.

/// A virtual register name.
///
/// Code generators allocate registers from an unbounded SSA-like namespace;
/// pipeline models track readiness per name. Physical register pressure is
/// modelled by the back-ends themselves (e.g. Saturn's architectural vector
/// register file limits live values per LMUL group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Standard element width for single-precision floats, in bits.
pub const SEW_F32: u8 = 32;

/// Functional-unit kind a micro-op executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Scalar integer ALU (address generation, bit-shifting for RoCC
    /// command construction, loop bookkeeping).
    IntAlu,
    /// Scalar integer multiply/divide.
    IntMul,
    /// Branch/jump resolution.
    Branch,
    /// Scalar load pipe.
    Load,
    /// Scalar store pipe.
    Store,
    /// Scalar floating-point unit (FMA-capable).
    Fpu,
    /// Iterative FP divide/sqrt unit.
    FpDiv,
    /// The decoupled vector unit (Saturn).
    VecUnit,
    /// The RoCC command port toward a decoupled accelerator (Gemmini).
    Rocc,
}

/// Semantic class of a micro-op.
///
/// Classes drive three things: functional-unit selection, result latency
/// lookup, and the instruction-mix statistics behind the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpClass {
    /// Integer ALU op (addi, slli, …).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Conditional branch or jump.
    Branch,
    /// Scalar FP load.
    Load,
    /// Scalar FP store.
    Store,
    /// FP add/sub.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// Fused multiply-add.
    FpFma,
    /// FP divide.
    FpDiv,
    /// FP compare / min / max / abs — single-cycle-ish FP simple ops.
    FpSimple,
    /// `vsetvli` — vector length configuration.
    VSet,
    /// Vector op executed on the vector unit; details in
    /// [`Payload::Vector`].
    Vector,
    /// RoCC command toward the accelerator; details in [`Payload::Rocc`].
    Rocc,
    /// Full memory fence: stalls the frontend until outstanding accelerator
    /// memory traffic drains.
    Fence,
}

impl OpClass {
    /// The functional unit this class occupies.
    pub fn fu(self) -> FuKind {
        match self {
            OpClass::IntAlu => FuKind::IntAlu,
            OpClass::IntMul => FuKind::IntMul,
            OpClass::Branch => FuKind::Branch,
            OpClass::Load => FuKind::Load,
            OpClass::Store => FuKind::Store,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpFma | OpClass::FpSimple => FuKind::Fpu,
            OpClass::FpDiv => FuKind::FpDiv,
            OpClass::VSet => FuKind::IntAlu,
            OpClass::Vector => FuKind::VecUnit,
            OpClass::Rocc | OpClass::Fence => FuKind::Rocc,
        }
    }

    /// Whether this is a scalar floating-point op.
    pub fn is_scalar_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpFma | OpClass::FpDiv | OpClass::FpSimple
        )
    }
}

/// What a vector micro-op does on the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VecOpKind {
    /// Element-wise arithmetic (vfadd, vfsub, vfmin, vfmax, vfabs, …).
    Arith,
    /// Element-wise multiply-accumulate (vfmacc.vv / vfmacc.vf).
    MulAdd,
    /// Unit-stride vector load.
    Load,
    /// Unit-stride vector store.
    Store,
    /// Strided or indexed vector load (slower element extraction).
    LoadStrided,
    /// Strided or indexed vector store.
    StoreStrided,
    /// Reduction (vfredosum/vfredusum/vfredmax). Saturn executes these
    /// serially, one element per cycle.
    Reduction,
    /// Register move / broadcast (vfmv, vmv).
    Move,
}

/// Vector configuration carried by a [`Payload::Vector`] micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorSpec {
    /// Active vector length in elements.
    pub vl: u32,
    /// Element width in bits.
    pub sew: u8,
    /// Register-group multiplier (1, 2, 4 or 8).
    pub lmul: u8,
    /// Operation kind.
    pub kind: VecOpKind,
}

impl VectorSpec {
    /// Convenience constructor for an `f32` op.
    pub fn f32(kind: VecOpKind, vl: u32, lmul: u8) -> Self {
        VectorSpec {
            vl,
            sew: SEW_F32,
            lmul,
            kind,
        }
    }
}

/// Vector configuration established by a `vsetvli` ([`OpClass::VSet`]).
///
/// Carried as the op's payload so analyses can track the architectural
/// vector-config state machine: every [`OpClass::Vector`] op must execute
/// under a dominating `VSet` whose fields match its [`VectorSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vtype {
    /// Active vector length in elements.
    pub vl: u32,
    /// Element width in bits.
    pub sew: u8,
    /// Register-group multiplier (1, 2, 4 or 8).
    pub lmul: u8,
}

impl Vtype {
    /// Convenience constructor for an `f32` configuration.
    pub fn f32(vl: u32, lmul: u8) -> Self {
        Vtype {
            vl,
            sew: SEW_F32,
            lmul,
        }
    }

    /// Whether a vector op with `spec` can legally execute under this
    /// configuration.
    pub fn matches(&self, spec: &VectorSpec) -> bool {
        self.vl == spec.vl && self.sew == spec.sew && self.lmul == spec.lmul
    }
}

/// A command sent over the RoCC interface to a decoupled accelerator.
///
/// The vocabulary is Gemmini-flavoured (the one decoupled accelerator in
/// this design space); sizes are in *elements* unless stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RoccCmd {
    /// `config_ex` / `config_ld` / `config_st`: reconfigure dataflow,
    /// scaling, strides.
    Config,
    /// DMA a `rows × cols` tile from main memory into the scratchpad.
    Mvin {
        /// Tile rows.
        rows: u16,
        /// Tile columns.
        cols: u16,
        /// Destination scratchpad row address.
        base: u32,
    },
    /// DMA a `rows × cols` tile from the scratchpad/accumulator to main
    /// memory. `pool_stride > 1` applies max-pooling during the move.
    Mvout {
        /// Tile rows.
        rows: u16,
        /// Tile columns.
        cols: u16,
        /// Max-pool window (1 = no pooling).
        pool_stride: u8,
        /// Source scratchpad row address.
        base: u32,
    },
    /// Load a tile into the mesh's preload register (weight-stationary) or
    /// set the output destination (output-stationary).
    Preload,
    /// Fine-grained matmul tile: `rows × ks` of A against `ks × cols` of B.
    /// `gemv` marks the broadcast-B mesh mode of the paper's hardware
    /// extension.
    ComputeTile {
        /// Output tile rows.
        rows: u16,
        /// Output tile cols.
        cols: u16,
        /// Reduction (shared) dimension for this tile.
        ks: u16,
        /// Whether the tile runs in GEMV broadcast mode.
        gemv: bool,
        /// Scratchpad row address the output tile lands at.
        out_base: u32,
    },
    /// Coarse-grained FSM-sequenced matmul over a full `m × n × k` problem
    /// (`compute_matmul` in the Gemmini software library).
    LoopMatmul {
        /// Output rows.
        m: u16,
        /// Output cols.
        n: u16,
        /// Reduction dimension.
        k: u16,
    },
    /// Flush / no-op command used for synchronization experiments.
    Flush,
}

/// Extra information attached to a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Payload {
    /// No payload (scalar op).
    None,
    /// Configuration established by an [`OpClass::VSet`] op.
    VSet(Vtype),
    /// Vector configuration for [`OpClass::Vector`] ops.
    Vector(VectorSpec),
    /// Accelerator command for [`OpClass::Rocc`] ops.
    Rocc(RoccCmd),
}

/// One micro-operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Semantic class (selects FU, latency, stats bucket).
    pub class: OpClass,
    /// Destination register, if the op produces a value.
    pub dst: Option<VReg>,
    /// Source registers (up to three; FMA uses all three).
    pub srcs: [Option<VReg>; 3],
    /// Class-specific payload.
    pub payload: Payload,
}

impl MicroOp {
    /// Creates a scalar micro-op.
    pub fn scalar(class: OpClass, dst: Option<VReg>, srcs: &[VReg]) -> Self {
        debug_assert!(srcs.len() <= 3, "micro-ops have at most 3 sources");
        let mut s = [None; 3];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        MicroOp {
            class,
            dst,
            srcs: s,
            payload: Payload::None,
        }
    }

    /// Iterates over the op's present source registers.
    pub fn sources(&self) -> impl Iterator<Item = VReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_fu_mapping() {
        assert_eq!(OpClass::FpFma.fu(), FuKind::Fpu);
        assert_eq!(OpClass::Load.fu(), FuKind::Load);
        assert_eq!(OpClass::Vector.fu(), FuKind::VecUnit);
        assert_eq!(OpClass::Rocc.fu(), FuKind::Rocc);
        assert_eq!(OpClass::Fence.fu(), FuKind::Rocc);
    }

    #[test]
    fn scalar_fp_classification() {
        assert!(OpClass::FpFma.is_scalar_fp());
        assert!(OpClass::FpDiv.is_scalar_fp());
        assert!(!OpClass::Vector.is_scalar_fp());
        assert!(!OpClass::Load.is_scalar_fp());
    }

    #[test]
    fn micro_op_sources() {
        let op = MicroOp::scalar(OpClass::FpFma, Some(VReg(3)), &[VReg(0), VReg(1), VReg(2)]);
        let srcs: Vec<_> = op.sources().collect();
        assert_eq!(srcs, vec![VReg(0), VReg(1), VReg(2)]);
    }

    #[test]
    fn vector_spec_f32() {
        let v = VectorSpec::f32(VecOpKind::MulAdd, 12, 4);
        assert_eq!(v.sew, 32);
        assert_eq!(v.vl, 12);
        assert_eq!(v.lmul, 4);
    }
}
