//! Property-based tests for the Gemmini timing model and code generator.

use proptest::prelude::*;
use soc_cpu::{simulate_with_accel, CoreConfig};
use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, MatId};
use soc_isa::TraceBuilder;

fn run_gemv(cfg: GemminiConfig, opts: GemminiOpts, m: usize, k: usize) -> (u64, GemminiUnit) {
    let mut gen = GemminiKernels::new(cfg, opts);
    let mut b = TraceBuilder::new();
    gen.gemv(&mut b, m, k, MatId(0), MatId(1), MatId(2));
    gen.sync_to_cpu(&mut b, m, MatId(2));
    b.fence();
    let mut unit = GemminiUnit::new(cfg);
    let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
    (c, unit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compute-tile cost is monotone in every dimension.
    #[test]
    fn compute_cycles_monotone(rows in 1u64..64, cols in 1u64..64, ks in 1u64..64, gemv in any::<bool>()) {
        for cfg in [GemminiConfig::os_4x4_32kb(), GemminiConfig::os_4x4_32kb().with_gemv_support(),
                    GemminiConfig::os_8x8_64kb()] {
            let unit = GemminiUnit::new(cfg);
            let base = unit.compute_cycles(rows, cols, ks, gemv);
            prop_assert!(unit.compute_cycles(rows + 1, cols, ks, gemv) >= base);
            prop_assert!(unit.compute_cycles(rows, cols, ks + 1, gemv) >= base);
        }
    }

    /// MAC accounting exactly matches the issued work, and utilization
    /// never exceeds 1.
    #[test]
    fn mac_accounting_exact(m in 1usize..48, k in 1usize..48) {
        let cfg = GemminiConfig::os_4x4_32kb();
        let (elapsed, unit) = run_gemv(cfg, GemminiOpts::optimized(), m, k);
        // Tiled GEMV issues ceil-padded tiles; MACs are counted per tile,
        // so the total is at least m*k and at most the padded volume.
        let dim = cfg.dim;
        let padded = m.div_ceil(dim) * dim * k.div_ceil(dim) * dim;
        prop_assert!(unit.total_macs() >= (m * k) as u64);
        prop_assert!(unit.total_macs() <= padded as u64);
        prop_assert!(unit.utilization(elapsed) <= 1.0 + 1e-9);
    }

    /// The GEMV hardware extension never slows a GEMV down.
    #[test]
    fn gemv_extension_never_hurts(m in 1usize..48, k in 1usize..48) {
        let plain = run_gemv(GemminiConfig::os_4x4_32kb(), GemminiOpts::optimized(), m, k).0;
        let ext = run_gemv(
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
            GemminiOpts::optimized(),
            m,
            k,
        )
        .0;
        prop_assert!(ext <= plain, "extension made {m}x{k} slower: {ext} > {plain}");
    }

    /// The fully optimized mapping never loses to the baseline mapping in
    /// the solver regime: repeated kernels over a shared workspace, where
    /// residency and static mapping amortize. (On a single cold one-shot
    /// the coarse FSM can win by overlapping its internal DMA.)
    #[test]
    fn optimized_never_loses_in_solver_regime(m in 4usize..32, k in 4usize..32, reps in 3usize..8) {
        let run = |opts: GemminiOpts| {
            let cfg = GemminiConfig::os_4x4_32kb();
            let mut gen = GemminiKernels::new(cfg, opts);
            let mut b = TraceBuilder::new();
            for r in 0..reps {
                gen.gemv(&mut b, m, k, MatId(0), MatId(1), MatId(10 + r as u32));
            }
            b.fence();
            let mut unit = GemminiUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let opt = run(GemminiOpts::optimized());
        let base = run(GemminiOpts::baseline());
        prop_assert!(opt <= base, "optimized {opt} > baseline {base} for {reps}x gemv {m}x{k}");
    }

    /// Larger meshes never make a (cold) GEMM slower.
    #[test]
    fn bigger_mesh_never_slower_gemm(n in 4usize..40) {
        let run = |cfg: GemminiConfig| {
            let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
            let mut b = TraceBuilder::new();
            gen.gemm(&mut b, n, n, n, MatId(0), MatId(1), MatId(2));
            b.fence();
            let mut unit = GemminiUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let c4 = run(GemminiConfig::os_4x4_32kb());
        let c8 = run(GemminiConfig::os_8x8_64kb());
        prop_assert!(c8 <= c4 + 8, "8x8 {c8} slower than 4x4 {c4} on {n}^3");
    }
}
