//! Property-based tests for the Gemmini timing model and code generator.
//!
//! Cases come from a deterministic in-file PRNG so every failure
//! reproduces exactly from the printed seed.

use soc_cpu::{simulate_with_accel, CoreConfig};
use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, MatId};
use soc_isa::TraceBuilder;

/// SplitMix64 — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn run_gemv(cfg: GemminiConfig, opts: GemminiOpts, m: usize, k: usize) -> (u64, GemminiUnit) {
    let mut gen = GemminiKernels::new(cfg, opts);
    let mut b = TraceBuilder::new();
    gen.gemv(&mut b, m, k, MatId(0), MatId(1), MatId(2));
    gen.sync_to_cpu(&mut b, m, MatId(2));
    b.fence();
    let mut unit = GemminiUnit::new(cfg);
    let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
    (c, unit)
}

/// Compute-tile cost is monotone in every dimension.
#[test]
fn compute_cycles_monotone() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed);
        let (rows, cols, ks) = (rng.below(1, 64), rng.below(1, 64), rng.below(1, 64));
        let gemv = rng.next().is_multiple_of(2);
        for cfg in [
            GemminiConfig::os_4x4_32kb(),
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
            GemminiConfig::os_8x8_64kb(),
        ] {
            let unit = GemminiUnit::new(cfg);
            let base = unit.compute_cycles(rows, cols, ks, gemv);
            assert!(unit.compute_cycles(rows + 1, cols, ks, gemv) >= base);
            assert!(unit.compute_cycles(rows, cols, ks + 1, gemv) >= base);
        }
    }
}

/// MAC accounting exactly matches the issued work, and utilization never
/// exceeds 1.
#[test]
fn mac_accounting_exact() {
    for seed in 100..148u64 {
        let mut rng = Rng(seed);
        let (m, k) = (rng.below(1, 48) as usize, rng.below(1, 48) as usize);
        let cfg = GemminiConfig::os_4x4_32kb();
        let (elapsed, unit) = run_gemv(cfg, GemminiOpts::optimized(), m, k);
        // Tiled GEMV issues ceil-padded tiles; MACs are counted per tile,
        // so the total is at least m*k and at most the padded volume.
        let dim = cfg.dim;
        let padded = m.div_ceil(dim) * dim * k.div_ceil(dim) * dim;
        assert!(unit.total_macs() >= (m * k) as u64, "seed {seed}");
        assert!(unit.total_macs() <= padded as u64, "seed {seed}");
        assert!(unit.utilization(elapsed) <= 1.0 + 1e-9, "seed {seed}");
    }
}

/// The GEMV hardware extension never slows a GEMV down.
#[test]
fn gemv_extension_never_hurts() {
    for seed in 200..248u64 {
        let mut rng = Rng(seed);
        let (m, k) = (rng.below(1, 48) as usize, rng.below(1, 48) as usize);
        let plain = run_gemv(GemminiConfig::os_4x4_32kb(), GemminiOpts::optimized(), m, k).0;
        let ext = run_gemv(
            GemminiConfig::os_4x4_32kb().with_gemv_support(),
            GemminiOpts::optimized(),
            m,
            k,
        )
        .0;
        assert!(
            ext <= plain,
            "seed {seed}: extension made {m}x{k} slower: {ext} > {plain}"
        );
    }
}

/// The fully optimized mapping never loses to the baseline mapping in
/// the solver regime: repeated kernels over a shared workspace, where
/// residency and static mapping amortize. (On a single cold one-shot
/// the coarse FSM can win by overlapping its internal DMA.)
#[test]
fn optimized_never_loses_in_solver_regime() {
    for seed in 300..348u64 {
        let mut rng = Rng(seed);
        let (m, k) = (rng.below(4, 32) as usize, rng.below(4, 32) as usize);
        let reps = rng.below(3, 8) as usize;
        let run = |opts: GemminiOpts| {
            let cfg = GemminiConfig::os_4x4_32kb();
            let mut gen = GemminiKernels::new(cfg, opts);
            let mut b = TraceBuilder::new();
            for r in 0..reps {
                gen.gemv(&mut b, m, k, MatId(0), MatId(1), MatId(10 + r as u32));
            }
            b.fence();
            let mut unit = GemminiUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let opt = run(GemminiOpts::optimized());
        let base = run(GemminiOpts::baseline());
        assert!(
            opt <= base,
            "seed {seed}: optimized {opt} > baseline {base} for {reps}x gemv {m}x{k}"
        );
    }
}

/// Larger meshes never make a (cold) GEMM slower.
#[test]
fn bigger_mesh_never_slower_gemm() {
    for n in 4usize..40 {
        let run = |cfg: GemminiConfig| {
            let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
            let mut b = TraceBuilder::new();
            gen.gemm(&mut b, n, n, n, MatId(0), MatId(1), MatId(2));
            b.fence();
            let mut unit = GemminiUnit::new(cfg);
            simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
        };
        let c4 = run(GemminiConfig::os_4x4_32kb());
        let c8 = run(GemminiConfig::os_8x8_64kb());
        assert!(c8 <= c4 + 8, "8x8 {c8} slower than 4x4 {c4} on {n}^3");
    }
}
