//! Gemmini configuration points.

/// Mesh dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weight-stationary: weights preloaded into the mesh, partial sums
    /// accumulate in a dedicated accumulator memory.
    WeightStationary,
    /// Output-stationary: outputs accumulate inside the PEs, eliminating
    /// the separate accumulator memory — the configuration the paper's
    /// optimized TinyMPC mapping uses.
    OutputStationary,
}

/// Configuration of a Gemmini accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemminiConfig {
    /// Configuration name, e.g. `"OSGemmini4x4_32KB"`.
    pub name: &'static str,
    /// Mesh dimension (a `dim × dim` PE array).
    pub dim: usize,
    /// Dataflow style.
    pub dataflow: Dataflow,
    /// Scratchpad capacity in KiB.
    pub scratchpad_kb: usize,
    /// Number of scratchpad banks. The paper's GEMV extension requires at
    /// least `DIM + 1` banks (rounded up to a power of two).
    pub scratchpad_banks: usize,
    /// Accumulator memory in KiB (weight-stationary only; 0 otherwise).
    pub accumulator_kb: usize,
    /// Whether the GEMV hardware extension (broadcast B, strided A banks)
    /// is present.
    pub gemv_support: bool,
    /// Reservation-station entries (in-flight commands).
    pub rs_entries: usize,
    /// DRAM access latency for DMA transfers, in cycles.
    pub dma_latency: u64,
    /// DMA bus width in bytes per cycle.
    pub dma_bytes_per_cycle: u64,
}

impl GemminiConfig {
    /// The paper's optimized configuration: 4×4 output-stationary FP32
    /// mesh with a 32 KiB scratchpad.
    pub fn os_4x4_32kb() -> Self {
        GemminiConfig {
            name: "OSGemmini4x4_32KB",
            dim: 4,
            dataflow: Dataflow::OutputStationary,
            scratchpad_kb: 32,
            scratchpad_banks: 4,
            accumulator_kb: 0,
            gemv_support: false,
            rs_entries: 16,
            dma_latency: 40,
            dma_bytes_per_cycle: 32,
        }
    }

    /// 4×4 output-stationary mesh with a 64 KiB scratchpad.
    pub fn os_4x4_64kb() -> Self {
        GemminiConfig {
            name: "OSGemmini4x4_64KB",
            scratchpad_kb: 64,
            ..Self::os_4x4_32kb()
        }
    }

    /// 4×4 output-stationary mesh with a 16 KiB scratchpad — the paper's
    /// future-work question about smaller capacities. TinyMPC's workspace
    /// (a few KiB) still fits, so performance should hold at lower area.
    pub fn os_4x4_16kb() -> Self {
        GemminiConfig {
            name: "OSGemmini4x4_16KB",
            scratchpad_kb: 16,
            ..Self::os_4x4_32kb()
        }
    }

    /// The weight-stationary comparison point (64 KiB scratchpad, 1 KiB
    /// accumulator) — evaluated in the paper with only baseline software
    /// optimizations.
    pub fn ws_4x4_64kb() -> Self {
        GemminiConfig {
            name: "WSGemmini4x4_64KB",
            dataflow: Dataflow::WeightStationary,
            scratchpad_kb: 64,
            accumulator_kb: 1,
            ..Self::os_4x4_32kb()
        }
    }

    /// Adds the paper's GEMV hardware extension: `DIM + 1` scratchpad
    /// banks (rounded up to a power of two) and the broadcast-B mesh mode.
    pub fn with_gemv_support(mut self) -> Self {
        self.gemv_support = true;
        self.scratchpad_banks = (self.dim + 1).next_power_of_two();
        self
    }

    /// An 8×8 output-stationary configuration (for the Table II area
    /// scaling study).
    pub fn os_8x8_64kb() -> Self {
        GemminiConfig {
            name: "OSGemmini8x8_64KB",
            dim: 8,
            scratchpad_kb: 64,
            scratchpad_banks: 4,
            ..Self::os_4x4_32kb()
        }
    }

    /// Peak multiply-accumulates per cycle of the mesh.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.dim * self.dim) as u64
    }

    /// Scratchpad capacity in rows of `dim` FP32 elements — the address
    /// space `mvin`/`mvout`/compute commands index into.
    pub fn spad_rows(&self) -> u32 {
        (self.scratchpad_kb * 1024 / (self.dim * 4)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_support_adds_banks() {
        let base = GemminiConfig::os_4x4_32kb();
        assert_eq!(base.scratchpad_banks, 4);
        let gemv = base.with_gemv_support();
        assert!(gemv.gemv_support);
        // DIM+1 = 5, rounded to 8.
        assert_eq!(gemv.scratchpad_banks, 8);

        let gemv8 = GemminiConfig::os_8x8_64kb().with_gemv_support();
        assert_eq!(gemv8.scratchpad_banks, 16);
    }

    #[test]
    fn ws_has_accumulator() {
        assert_eq!(GemminiConfig::ws_4x4_64kb().accumulator_kb, 1);
        assert_eq!(GemminiConfig::os_4x4_64kb().accumulator_kb, 0);
    }

    #[test]
    fn peak_macs() {
        assert_eq!(GemminiConfig::os_4x4_32kb().peak_macs_per_cycle(), 16);
        assert_eq!(GemminiConfig::os_8x8_64kb().peak_macs_per_cycle(), 64);
    }
}
