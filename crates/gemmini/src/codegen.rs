//! Gemmini software mappings (Section V-B of the paper).
//!
//! Every optimization the paper applies is an independent toggle in
//! [`GemminiOpts`] so the evaluation can ablate them:
//!
//! * **ISA style** — coarse-grained `LOOP_*` FSM commands (5–7 config
//!   commands up front) vs the fine-grained tile ISA.
//! * **Static mapping** — addresses/strides/tiling computed at compile
//!   time, removing the scalar bit-shifting that otherwise precedes every
//!   RoCC command.
//! * **Scratchpad residency** — operands and intermediates stay in the
//!   scratchpad across kernels, removing the mvout → fence → mvin
//!   round-trip per operator (the fence alone can stall the core for
//!   hundreds of cycles).
//! * **Fused activations** — `abs` and `clip` built from ReLU on the mesh
//!   (Equations 1–3) instead of falling back to the scalar core.
//! * **Pooling reduction** — max-pooling during `mvout` cuts the CPU's
//!   share of global max reductions by 4×.

use crate::{Dataflow, GemminiConfig};
use soc_cpu::{ScalarKernels, ScalarStyle};
use soc_isa::{RoccCmd, TraceBuilder, VReg};
use std::collections::HashMap;

/// Identity of a logical matrix/vector in the solver workspace, used for
/// scratchpad residency tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatId(pub u32);

/// Gemmini instruction-set style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaStyle {
    /// Coarse-grained FSM-sequenced commands (`LOOP_WS`-style).
    Coarse,
    /// Fine-grained per-tile commands.
    Fine,
}

/// Software-mapping optimization toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemminiOpts {
    /// Instruction-set style.
    pub isa: IsaStyle,
    /// Compile-time address/tiling computation.
    pub static_mapping: bool,
    /// Keep operands and intermediates scratchpad-resident.
    pub scratchpad_resident: bool,
    /// Implement abs/clip with mesh ReLU passes instead of scalar code.
    pub fuse_activation: bool,
    /// Use max-pooling on mvout for global reductions.
    pub pooling_reduction: bool,
}

impl GemminiOpts {
    /// The naive baseline mapping: coarse ISA, dynamic address
    /// computation, DRAM round-trips between operators, scalar activation
    /// and reduction code.
    pub fn baseline() -> Self {
        GemminiOpts {
            isa: IsaStyle::Coarse,
            static_mapping: false,
            scratchpad_resident: false,
            fuse_activation: false,
            pooling_reduction: false,
        }
    }

    /// The paper's fully optimized mapping.
    pub fn optimized() -> Self {
        GemminiOpts {
            isa: IsaStyle::Fine,
            static_mapping: true,
            scratchpad_resident: true,
            fuse_activation: true,
            pooling_reduction: true,
        }
    }
}

/// A contiguous scratchpad allocation, in scratchpad rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpadRegion {
    base: u32,
    rows: u32,
}

impl SpadRegion {
    fn end(&self) -> u32 {
        self.base + self.rows
    }
}

/// Gemmini kernel code generator with scratchpad-residency tracking.
///
/// The generator is stateful: it remembers which [`MatId`]s are resident in
/// the scratchpad and which RoCC command last wrote each of them (for
/// intra-accelerator dependence chaining), and it places every matrix at a
/// concrete scratchpad row address through a first-fit allocator sized
/// from [`GemminiConfig::scratchpad_kb`]. Emitted `mvin`/`mvout`/compute
/// commands carry those physical addresses, so a static analyzer can
/// replay the allocation against the real capacity. Call
/// [`invalidate`](Self::invalidate) when the CPU mutates a matrix behind
/// Gemmini's back.
///
/// Matrices are laid out column-block-major: a `rows × cols` matrix
/// occupies `rows * ceil(cols / DIM)` scratchpad rows, and the tile
/// covering matrix rows `i..i+t` of column block `j/DIM` starts at
/// `base + (j/DIM)*rows + i` — so every tile write is a contiguous row
/// range inside its matrix's region.
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_with_accel, CoreConfig};
/// use soc_gemmini::{GemminiConfig, GemminiKernels, GemminiOpts, GemminiUnit, MatId};
/// use soc_isa::TraceBuilder;
///
/// let cfg = GemminiConfig::os_4x4_32kb();
/// let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
/// let mut b = TraceBuilder::new();
/// gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(2));
/// let mut unit = GemminiUnit::new(cfg);
/// let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
/// assert!(cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct GemminiKernels {
    config: GemminiConfig,
    opts: GemminiOpts,
    /// Token of the command that last wrote each resident matrix.
    resident: HashMap<MatId, Option<VReg>>,
    /// Physical placement of every matrix the generator has seen.
    regions: HashMap<MatId, SpadRegion>,
    /// Allocation order, for FIFO eviction when the scratchpad fills.
    alloc_order: Vec<MatId>,
    /// Whether scalar stores have been emitted since the last fence: a
    /// following DMA read (`mvin`) must fence first or it races them.
    cpu_dirty: bool,
    /// Whether the execute pipe has been configured at least once.
    configured: bool,
    scalar: ScalarKernels,
}

impl GemminiKernels {
    /// Creates a generator for the given hardware configuration and
    /// optimization set.
    pub fn new(config: GemminiConfig, opts: GemminiOpts) -> Self {
        GemminiKernels {
            config,
            opts,
            resident: HashMap::new(),
            regions: HashMap::new(),
            alloc_order: Vec::new(),
            cpu_dirty: false,
            configured: false,
            scalar: ScalarKernels::new(ScalarStyle::Optimized),
        }
    }

    /// Scratchpad capacity in rows of `DIM` elements.
    pub fn spad_rows(&self) -> u32 {
        self.config.spad_rows()
    }

    /// Scratchpad rows a `rows × cols` matrix occupies.
    fn footprint(&self, rows: usize, cols: usize) -> u32 {
        (rows * cols.div_ceil(self.config.dim)) as u32
    }

    /// First-fit scan for a free gap of `need` rows.
    fn first_fit(&self, need: u32) -> Option<u32> {
        let mut taken: Vec<SpadRegion> = self.regions.values().copied().collect();
        taken.sort_by_key(|r| r.base);
        let mut cursor = 0u32;
        for r in &taken {
            if r.base.saturating_sub(cursor) >= need {
                return Some(cursor);
            }
            cursor = cursor.max(r.end());
        }
        if self.spad_rows().saturating_sub(cursor) >= need {
            Some(cursor)
        } else {
            None
        }
    }

    /// Evicts the oldest allocation not in `keep`; returns false if
    /// nothing can be evicted.
    fn evict_one(&mut self, keep: &[MatId]) -> bool {
        let victim = self
            .alloc_order
            .iter()
            .copied()
            .find(|id| !keep.contains(id));
        match victim {
            Some(id) => {
                self.regions.remove(&id);
                self.resident.remove(&id);
                self.alloc_order.retain(|&v| v != id);
                true
            }
            None => false,
        }
    }

    /// Returns the scratchpad base row of `id`, allocating (or growing) a
    /// region if needed. `keep` names matrices that must not be evicted to
    /// make room (the current kernel's operands).
    ///
    /// # Panics
    ///
    /// Panics if the working set of a single kernel exceeds the scratchpad.
    fn region_for(&mut self, id: MatId, rows: usize, cols: usize, keep: &[MatId]) -> u32 {
        let need = self.footprint(rows, cols);
        if let Some(r) = self.regions.get(&id) {
            if r.rows >= need {
                return r.base;
            }
            // The matrix grew; release the old region and re-place it.
            self.regions.remove(&id);
            self.alloc_order.retain(|&v| v != id);
        }
        loop {
            if let Some(base) = self.first_fit(need) {
                self.regions.insert(id, SpadRegion { base, rows: need });
                self.alloc_order.push(id);
                return base;
            }
            assert!(
                self.evict_one(keep),
                "scratchpad exhausted: {need} rows for {id:?} exceed the \
                 {} usable rows of {}",
                self.spad_rows(),
                self.config.name,
            );
        }
    }

    /// Emits a fence and clears the pending scalar-store hazard window.
    fn fence(&mut self, b: &mut TraceBuilder) {
        b.fence();
        self.cpu_dirty = false;
    }

    /// The optimization set in effect.
    pub fn opts(&self) -> &GemminiOpts {
        &self.opts
    }

    /// The hardware configuration targeted.
    pub fn config(&self) -> &GemminiConfig {
        &self.config
    }

    /// Marks a matrix as modified by the CPU: its scratchpad copy is
    /// stale and the next use will mvin it again. The CPU's stores are
    /// still draining, so that mvin must be fenced first.
    pub fn invalidate(&mut self, id: MatId) {
        self.resident.remove(&id);
        self.cpu_dirty = true;
    }

    /// Explicitly loads a matrix into the scratchpad (the paper's
    /// "load all matrices used by TinyMPC onto the first bank" workspace
    /// preload, including the ±identity utility matrices).
    pub fn preload(&mut self, b: &mut TraceBuilder, id: MatId, rows: usize, cols: usize) {
        self.ensure_resident(b, id, rows, cols, &[id]);
    }

    /// Scalar overhead of constructing one RoCC command.
    fn rocc_overhead(&self, b: &mut TraceBuilder) {
        if !self.opts.static_mapping {
            // Dynamic address/stride computation and operand bit-packing.
            b.int_ops(3);
        }
    }

    /// Emits the execute-pipe configuration commands. The optimized
    /// mapping configures once; the baseline re-configures per kernel
    /// (redundant commands the paper's "reduction of redundant operations"
    /// removes).
    fn configure(&mut self, b: &mut TraceBuilder) {
        let n_cmds = match self.opts.isa {
            IsaStyle::Coarse => 6,
            IsaStyle::Fine => 2,
        };
        if self.opts.static_mapping && self.configured {
            return;
        }
        for _ in 0..n_cmds {
            self.rocc_overhead(b);
            b.rocc(RoccCmd::Config, &[]);
        }
        self.configured = true;
    }

    /// Ensures `id` (shape `rows × cols`) is in the scratchpad, returning
    /// the dependence token of the command that produced it there.
    fn ensure_resident(
        &mut self,
        b: &mut TraceBuilder,
        id: MatId,
        rows: usize,
        cols: usize,
        keep: &[MatId],
    ) -> Option<VReg> {
        if self.opts.scratchpad_resident {
            if let Some(tok) = self.resident.get(&id) {
                // Redundant-mvin elimination: already resident.
                return *tok;
            }
        }
        if self.cpu_dirty {
            // The mvin's DMA read would race CPU stores still in flight
            // (Gemmini's load queue is decoupled from the core's store
            // buffer); drain them before reading the operand back.
            self.fence(b);
        }
        let base = self.region_for(id, rows, cols, keep);
        self.rocc_overhead(b);
        let tok = b.rocc(
            RoccCmd::Mvin {
                rows: rows as u16,
                cols: cols as u16,
                base,
            },
            &[],
        );
        self.resident.insert(id, Some(tok));
        Some(tok)
    }

    /// Records that `out` now lives in the scratchpad, produced by `tok`.
    /// Without scratchpad residency the result is immediately moved out to
    /// DRAM and a fence orders the round-trip.
    fn finish_output(
        &mut self,
        b: &mut TraceBuilder,
        out: MatId,
        rows: usize,
        cols: usize,
        base: u32,
        tok: Option<VReg>,
    ) {
        if self.opts.scratchpad_resident {
            self.resident.insert(out, tok);
        } else {
            self.rocc_overhead(b);
            let deps: Vec<VReg> = tok.into_iter().collect();
            b.rocc(
                RoccCmd::Mvout {
                    rows: rows as u16,
                    cols: cols as u16,
                    pool_stride: 1,
                    base,
                },
                &deps,
            );
            // Gemmini's RS does not track RAW hazards through memory: the
            // software must fence before the CPU (or a later mvin) can
            // safely read the result.
            self.fence(b);
            self.resident.remove(&out);
        }
    }

    /// GEMV `y = A·x` with `A` of shape `m × k`.
    pub fn gemv(&mut self, b: &mut TraceBuilder, m: usize, k: usize, a: MatId, x: MatId, y: MatId) {
        self.configure(b);
        match self.opts.isa {
            IsaStyle::Coarse => {
                self.rocc_overhead(b);
                let tok = b.rocc(
                    RoccCmd::LoopMatmul {
                        m: m as u16,
                        n: 1,
                        k: k as u16,
                    },
                    &[],
                );
                self.fence(b);
                let _ = (a, x);
                self.resident.remove(&y);
                let _ = tok;
            }
            IsaStyle::Fine => {
                let dim = self.config.dim;
                if self.footprint(m, k) + self.footprint(k, 1) + self.footprint(m, 1)
                    > self.spad_rows()
                {
                    self.gemv_streaming(b, m, k, a, x, y);
                    return;
                }
                let keep = [a, x, y];
                let a_tok = self.ensure_resident(b, a, m, k, &keep);
                let x_tok = self.ensure_resident(b, x, k, 1, &keep);
                let y_base = self.region_for(y, m, 1, &keep);
                let mut last = None;
                for i in (0..m).step_by(dim) {
                    let rows = dim.min(m - i);
                    let mut acc: Option<VReg> = None;
                    for p in (0..k).step_by(dim) {
                        let ks = dim.min(k - p);
                        self.rocc_overhead(b);
                        // OS dataflow: preload sets the output tile.
                        if p == 0 || self.config.dataflow == Dataflow::WeightStationary {
                            b.rocc(RoccCmd::Preload, &[]);
                        }
                        let mut deps: Vec<VReg> = Vec::new();
                        deps.extend(a_tok);
                        deps.extend(x_tok);
                        if let Some(prev) = acc {
                            deps.push(prev);
                        }
                        deps.truncate(3);
                        let tok = b.rocc(
                            RoccCmd::ComputeTile {
                                rows: rows as u16,
                                cols: 1,
                                ks: ks as u16,
                                gemv: self.config.gemv_support,
                                out_base: y_base + i as u32,
                            },
                            &deps,
                        );
                        acc = Some(tok);
                    }
                    last = acc;
                }
                self.finish_output(b, y, m, 1, y_base, last);
            }
        }
    }

    /// GEMM `C = A·B` with `A` `m × k`, `B` `k × n`.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
    pub fn gemm(
        &mut self,
        b: &mut TraceBuilder,
        m: usize,
        n: usize,
        k: usize,
        a: MatId,
        bm: MatId,
        c: MatId,
    ) {
        self.configure(b);
        match self.opts.isa {
            IsaStyle::Coarse => {
                self.rocc_overhead(b);
                b.rocc(
                    RoccCmd::LoopMatmul {
                        m: m as u16,
                        n: n as u16,
                        k: k as u16,
                    },
                    &[],
                );
                self.fence(b);
                let _ = (a, bm);
                self.resident.remove(&c);
            }
            IsaStyle::Fine => {
                let dim = self.config.dim;
                if self.footprint(m, k) + self.footprint(k, n) + self.footprint(m, n)
                    > self.spad_rows()
                {
                    self.gemm_streaming(b, m, n, k, a, bm, c);
                    return;
                }
                let keep = [a, bm, c];
                let a_tok = self.ensure_resident(b, a, m, k, &keep);
                let b_tok = self.ensure_resident(b, bm, k, n, &keep);
                let c_base = self.region_for(c, m, n, &keep);
                let mut last = None;
                for i in (0..m).step_by(dim) {
                    let rows = dim.min(m - i);
                    for j in (0..n).step_by(dim) {
                        let cols = dim.min(n - j);
                        // Column-block-major tile placement inside C's region.
                        let out_base = c_base + ((j / dim) * m + i) as u32;
                        let mut acc: Option<VReg> = None;
                        for p in (0..k).step_by(dim) {
                            let ks = dim.min(k - p);
                            self.rocc_overhead(b);
                            if p == 0 || self.config.dataflow == Dataflow::WeightStationary {
                                b.rocc(RoccCmd::Preload, &[]);
                            }
                            let mut deps: Vec<VReg> = Vec::new();
                            deps.extend(a_tok);
                            deps.extend(b_tok);
                            if let Some(prev) = acc {
                                deps.push(prev);
                            }
                            deps.truncate(3);
                            acc = Some(b.rocc(
                                RoccCmd::ComputeTile {
                                    rows: rows as u16,
                                    cols: cols as u16,
                                    ks: ks as u16,
                                    gemv: false,
                                    out_base,
                                },
                                &deps,
                            ));
                        }
                        last = acc;
                    }
                }
                self.finish_output(b, c, m, n, c_base, last);
            }
        }
    }

    /// GEMV fallback for matrices too large to be wholly resident: `A` is
    /// streamed through a one-row-block bounce buffer while `x` and `y`
    /// stay resident (they are `k` and `m` rows — tiny next to `A`).
    fn gemv_streaming(
        &mut self,
        b: &mut TraceBuilder,
        m: usize,
        k: usize,
        a: MatId,
        x: MatId,
        y: MatId,
    ) {
        let dim = self.config.dim;
        let keep = [a, x, y];
        self.resident.remove(&a);
        let x_tok = self.ensure_resident(b, x, k, 1, &keep);
        let a_base = self.region_for(a, dim, k, &keep);
        let y_base = self.region_for(y, m, 1, &keep);
        if self.cpu_dirty {
            self.fence(b);
        }
        let mut last = None;
        for i in (0..m).step_by(dim) {
            let rows = dim.min(m - i);
            self.rocc_overhead(b);
            let a_tok = b.rocc(
                RoccCmd::Mvin {
                    rows: rows as u16,
                    cols: k as u16,
                    base: a_base,
                },
                &[],
            );
            let mut acc: Option<VReg> = None;
            for p in (0..k).step_by(dim) {
                let ks = dim.min(k - p);
                self.rocc_overhead(b);
                if p == 0 || self.config.dataflow == Dataflow::WeightStationary {
                    b.rocc(RoccCmd::Preload, &[]);
                }
                let mut deps: Vec<VReg> = vec![a_tok];
                deps.extend(x_tok);
                if let Some(prev) = acc {
                    deps.push(prev);
                }
                deps.truncate(3);
                acc = Some(b.rocc(
                    RoccCmd::ComputeTile {
                        rows: rows as u16,
                        cols: 1,
                        ks: ks as u16,
                        gemv: self.config.gemv_support,
                        out_base: y_base + i as u32,
                    },
                    &deps,
                ));
            }
            last = acc;
        }
        // `A`'s bounce buffer holds only its last row-block; don't treat
        // the matrix as resident.
        self.resident.remove(&a);
        self.finish_output(b, y, m, 1, y_base, last);
    }

    /// GEMM fallback for working sets larger than the scratchpad: stream
    /// row-blocks of `A` and column-blocks of `B` through bounce buffers
    /// and move each `C` tile out as its reduction finishes. Nothing is
    /// left resident — this is the cold, capacity-bound regime where the
    /// paper's Figure 15 crossover favors the vector unit.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS gemm signature
    fn gemm_streaming(
        &mut self,
        b: &mut TraceBuilder,
        m: usize,
        n: usize,
        k: usize,
        a: MatId,
        bm: MatId,
        c: MatId,
    ) {
        let dim = self.config.dim;
        let keep = [a, bm, c];
        self.resident.remove(&a);
        self.resident.remove(&bm);
        self.resident.remove(&c);
        let a_base = self.region_for(a, dim, k, &keep);
        let b_base = self.region_for(bm, k, dim, &keep);
        let c_base = self.region_for(c, dim, dim, &keep);
        if self.cpu_dirty {
            self.fence(b);
        }
        for i in (0..m).step_by(dim) {
            let rows = dim.min(m - i);
            self.rocc_overhead(b);
            let a_tok = b.rocc(
                RoccCmd::Mvin {
                    rows: rows as u16,
                    cols: k as u16,
                    base: a_base,
                },
                &[],
            );
            for j in (0..n).step_by(dim) {
                let cols = dim.min(n - j);
                self.rocc_overhead(b);
                let b_tok = b.rocc(
                    RoccCmd::Mvin {
                        rows: k as u16,
                        cols: cols as u16,
                        base: b_base,
                    },
                    &[],
                );
                let mut acc: Option<VReg> = None;
                for p in (0..k).step_by(dim) {
                    let ks = dim.min(k - p);
                    self.rocc_overhead(b);
                    if p == 0 || self.config.dataflow == Dataflow::WeightStationary {
                        b.rocc(RoccCmd::Preload, &[]);
                    }
                    let mut deps: Vec<VReg> = vec![a_tok, b_tok];
                    if let Some(prev) = acc {
                        deps.push(prev);
                    }
                    deps.truncate(3);
                    acc = Some(b.rocc(
                        RoccCmd::ComputeTile {
                            rows: rows as u16,
                            cols: cols as u16,
                            ks: ks as u16,
                            gemv: false,
                            out_base: c_base,
                        },
                        &deps,
                    ));
                }
                self.rocc_overhead(b);
                let deps: Vec<VReg> = acc.into_iter().collect();
                b.rocc(
                    RoccCmd::Mvout {
                        rows: rows as u16,
                        cols: cols as u16,
                        pool_stride: 1,
                        base: c_base,
                    },
                    &deps,
                );
            }
        }
        // The CPU may read C right after the kernel: drain the tile
        // mvouts.
        self.fence(b);
    }

    /// Element-wise pass(es) over an `n`-element vector on the mesh, using
    /// the identity-matmul trick (`I·x + d`): each pass costs
    /// `⌈n/DIM⌉` GEMV-shaped tiles.
    pub fn elementwise(
        &mut self,
        b: &mut TraceBuilder,
        n: usize,
        passes: usize,
        ins: &[MatId],
        out: MatId,
    ) {
        self.configure(b);
        let dim = self.config.dim;
        let mut keep: Vec<MatId> = ins.to_vec();
        keep.push(out);
        let mut deps: Vec<VReg> = Vec::new();
        for &id in ins {
            deps.extend(self.ensure_resident(b, id, n, 1, &keep));
        }
        let out_base = self.region_for(out, n, 1, &keep);
        let mut last = None;
        for _pass in 0..passes {
            let mut pass_last = None;
            for i in (0..n).step_by(dim) {
                let rows = dim.min(n - i);
                self.rocc_overhead(b);
                let mut d = deps.clone();
                d.extend(last);
                d.truncate(3);
                pass_last = Some(b.rocc(
                    RoccCmd::ComputeTile {
                        rows: rows as u16,
                        cols: 1,
                        ks: dim as u16,
                        gemv: self.config.gemv_support,
                        out_base: out_base + i as u32,
                    },
                    &d,
                ));
            }
            last = pass_last;
        }
        self.finish_output(b, out, n, 1, out_base, last);
    }

    /// Number of mesh passes an absolute value costs:
    /// `abs(x) = ReLU(x) + ReLU(-x)` (Equation 1) — two ReLU-fused matmuls
    /// against the ±identity utility matrices, plus the final add.
    pub fn abs_passes(&self) -> usize {
        3
    }

    /// Number of mesh passes a two-sided clip costs (Equations 2 and 3):
    /// one ReLU-fused pass per bound.
    pub fn clip_passes(&self) -> usize {
        2
    }

    /// Element-wise absolute value of an `n`-vector. Falls back to scalar
    /// code when activation fusion is disabled.
    pub fn abs(&mut self, b: &mut TraceBuilder, n: usize, x: MatId, out: MatId) {
        if self.opts.fuse_activation {
            self.elementwise(b, n, self.abs_passes(), &[x], out);
        } else {
            self.cpu_fallback_map(b, n, x, out, 1);
        }
    }

    /// Element-wise clip of an `n`-vector into `[lo, hi]`.
    pub fn clip(&mut self, b: &mut TraceBuilder, n: usize, x: MatId, out: MatId) {
        if self.opts.fuse_activation {
            self.elementwise(b, n, self.clip_passes(), &[x], out);
        } else {
            self.cpu_fallback_map(b, n, x, out, 2);
        }
    }

    /// Scalar fallback: sync the operand out of the scratchpad, run the
    /// map on the CPU, and invalidate the scratchpad copy of the output.
    fn cpu_fallback_map(
        &mut self,
        b: &mut TraceBuilder,
        n: usize,
        x: MatId,
        out: MatId,
        fp_ops: usize,
    ) {
        self.sync_to_cpu(b, n, x);
        let chain = vec![soc_isa::OpClass::FpSimple; fp_ops];
        self.scalar.map(b, n, 1, &chain);
        self.invalidate(out);
    }

    /// Moves a vector out to memory (if resident) and fences so the CPU
    /// can read it.
    pub fn sync_to_cpu(&mut self, b: &mut TraceBuilder, n: usize, id: MatId) {
        if let Some(tok) = self.resident.remove(&id) {
            let base = self.regions.get(&id).map_or(0, |r| r.base);
            self.rocc_overhead(b);
            let deps: Vec<VReg> = tok.into_iter().collect();
            b.rocc(
                RoccCmd::Mvout {
                    rows: n as u16,
                    cols: 1,
                    pool_stride: 1,
                    base,
                },
                &deps,
            );
            self.fence(b);
        }
    }

    /// Global max-reduction over an `n`-vector that lives in the
    /// scratchpad: with pooling, the mvout reduces 4:1 and the CPU
    /// finishes on `⌈n/4⌉` elements; otherwise the CPU reduces all `n`.
    /// Returns the scalar result register.
    pub fn max_reduce(&mut self, b: &mut TraceBuilder, n: usize, x: MatId) -> VReg {
        // If the CPU owns the current copy (e.g. a scalar fallback just
        // rewrote it), stage it back into the scratchpad first —
        // ensure_resident also fences the CPU's in-flight stores.
        let tok = match self.resident.remove(&x) {
            Some(tok) => tok,
            None => {
                let tok = self.ensure_resident(b, x, n, 1, &[x]);
                self.resident.remove(&x);
                tok
            }
        };
        let base = self.regions.get(&x).map_or(0, |r| r.base);
        let (rows, pool, cpu_n) = if self.opts.pooling_reduction {
            (n.div_ceil(4), 2u8, n.div_ceil(4))
        } else {
            (n, 1u8, n)
        };
        self.rocc_overhead(b);
        let deps: Vec<VReg> = tok.into_iter().collect();
        b.rocc(
            RoccCmd::Mvout {
                rows: rows as u16,
                cols: 1,
                pool_stride: pool,
                base,
            },
            &deps,
        );
        self.fence(b);
        // CPU finishes the reduction (tree max over the pooled elements).
        self.scalar.reduce_max_abs_diff(b, cpu_n.div_ceil(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GemminiUnit;
    use soc_cpu::{simulate_with_accel, CoreConfig};
    use soc_isa::Cycles;

    fn run(
        cfg: GemminiConfig,
        opts: GemminiOpts,
        f: impl Fn(&mut GemminiKernels, &mut TraceBuilder),
    ) -> Cycles {
        let mut gen = GemminiKernels::new(cfg, opts);
        let mut b = TraceBuilder::new();
        f(&mut gen, &mut b);
        b.fence();
        let mut unit = GemminiUnit::new(cfg);
        simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit)
    }

    /// A TinyMPC-shaped burst of dependent GEMVs.
    fn gemv_burst(gen: &mut GemminiKernels, b: &mut TraceBuilder) {
        for rep in 0..10 {
            let y = MatId(100 + rep);
            gen.gemv(b, 12, 12, MatId(0), MatId(1), y);
            gen.gemv(b, 4, 12, MatId(2), y, MatId(200 + rep));
        }
    }

    #[test]
    fn optimized_mapping_crushes_baseline() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let base = run(cfg, GemminiOpts::baseline(), gemv_burst);
        let opt = run(cfg, GemminiOpts::optimized(), gemv_burst);
        assert!(
            (opt as f64) < base as f64 * 0.5,
            "optimized {opt} should crush baseline {base}"
        );
    }

    #[test]
    fn scratchpad_residency_removes_fences() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut no_resident = GemminiOpts::optimized();
        no_resident.scratchpad_resident = false;
        let with_res = run(cfg, GemminiOpts::optimized(), gemv_burst);
        let without = run(cfg, no_resident, gemv_burst);
        assert!(
            with_res < without,
            "resident {with_res} vs round-trips {without}"
        );
    }

    #[test]
    fn static_mapping_cuts_rocc_construction() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut dynamic = GemminiOpts::optimized();
        dynamic.static_mapping = false;
        let stat = run(cfg, GemminiOpts::optimized(), gemv_burst);
        let dyn_ = run(cfg, dynamic, gemv_burst);
        assert!(stat < dyn_, "static {stat} vs dynamic {dyn_}");
    }

    #[test]
    fn gemv_hardware_accelerates_wide_gemv() {
        let plain = GemminiConfig::os_4x4_32kb();
        let ext = plain.with_gemv_support();
        let wide = |gen: &mut GemminiKernels, b: &mut TraceBuilder| {
            gen.gemv(b, 32, 32, MatId(0), MatId(1), MatId(2));
            gen.sync_to_cpu(b, 32, MatId(2));
        };
        let t_plain = run(plain, GemminiOpts::optimized(), wide);
        let t_ext = run(ext, GemminiOpts::optimized(), wide);
        assert!(
            (t_ext as f64) < t_plain as f64 * 0.75,
            "gemv hw {t_ext} vs plain {t_plain}"
        );
    }

    #[test]
    fn pooling_reduces_cpu_reduction_work() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut no_pool = GemminiOpts::optimized();
        no_pool.pooling_reduction = false;
        let reduce = |gen: &mut GemminiKernels, b: &mut TraceBuilder| {
            gen.elementwise(b, 120, 2, &[MatId(0), MatId(1)], MatId(2));
            gen.max_reduce(b, 120, MatId(2));
        };
        let pooled = run(cfg, GemminiOpts::optimized(), reduce);
        let unpooled = run(cfg, no_pool, reduce);
        assert!(pooled < unpooled, "pooled {pooled} vs unpooled {unpooled}");
    }

    #[test]
    fn fine_isa_beats_coarse_on_mpc_sized_kernels() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut coarse = GemminiOpts::optimized();
        coarse.isa = IsaStyle::Coarse;
        let fine = run(cfg, GemminiOpts::optimized(), gemv_burst);
        let coarse_t = run(cfg, coarse, gemv_burst);
        assert!(fine < coarse_t, "fine {fine} vs coarse {coarse_t}");
    }

    #[test]
    fn residency_tracking_skips_redundant_mvins() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
        let mut b = TraceBuilder::new();
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(2));
        let after_first = b.len();
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(3));
        let second = b.len() - after_first;
        // The second call reuses resident A and x: strictly fewer ops.
        assert!(
            second < after_first,
            "second {second} vs first {after_first}"
        );
    }

    #[test]
    fn invalidate_forces_re_mvin() {
        let cfg = GemminiConfig::os_4x4_32kb();
        let mut gen = GemminiKernels::new(cfg, GemminiOpts::optimized());
        let mut b = TraceBuilder::new();
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(2));
        let baseline_len = b.len();
        gen.invalidate(MatId(1));
        gen.gemv(&mut b, 12, 12, MatId(0), MatId(1), MatId(3));
        let second = b.len() - baseline_len;
        let mut gen2 = GemminiKernels::new(cfg, GemminiOpts::optimized());
        let mut b2 = TraceBuilder::new();
        gen2.gemv(&mut b2, 12, 12, MatId(0), MatId(1), MatId(2));
        let fresh_second_start = b2.len();
        gen2.gemv(&mut b2, 12, 12, MatId(0), MatId(1), MatId(3));
        let resident_second = b2.len() - fresh_second_start;
        assert!(second > resident_second, "invalidation must re-mvin");
    }
}
