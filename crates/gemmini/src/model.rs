//! The Gemmini accelerator timing model (an [`Accelerator`]).

use crate::{Dataflow, GemminiConfig};
use soc_cpu::{Accelerator, DispatchResult};
use soc_isa::{Cycles, MicroOp, Payload, RoccCmd, VReg};
use std::collections::{HashMap, VecDeque};

/// Gemmini: a decoupled RoCC co-processor with independent load, store and
/// execute controllers fed through a reservation station.
///
/// Commands carry explicit register dependencies from the code generator
/// (intra-accelerator ordering, e.g. compute-after-mvin); cross-memory
/// read-after-write hazards are *not* tracked — exactly like real Gemmini —
/// so the software must fence, and the fence cost is visible to the scalar
/// core through [`Accelerator::drain_cycle`].
///
/// # Examples
///
/// ```
/// use soc_cpu::{simulate_with_accel, CoreConfig};
/// use soc_isa::{RoccCmd, TraceBuilder};
/// use soc_gemmini::{GemminiConfig, GemminiUnit};
///
/// let mut b = TraceBuilder::new();
/// let a = b.rocc(RoccCmd::Mvin { rows: 4, cols: 4, base: 0 }, &[]);
/// b.rocc(RoccCmd::ComputeTile { rows: 4, cols: 4, ks: 4, gemv: false, out_base: 0 }, &[a]);
/// let mut gemmini = GemminiUnit::new(GemminiConfig::os_4x4_32kb());
/// let cycles = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut gemmini);
/// assert!(cycles > 40); // dominated by the DMA latency of the mvin
/// ```
#[derive(Debug, Clone)]
pub struct GemminiUnit {
    config: GemminiConfig,
    /// Completion time of each command's destination token.
    regs: HashMap<VReg, Cycles>,
    /// Busy horizons of the three controllers.
    load_free: Cycles,
    store_free: Cycles,
    ex_free: Cycles,
    /// Completion cycles of in-flight reservation-station entries.
    rs: VecDeque<Cycles>,
    /// Completion horizon of all work including DMA.
    drain: Cycles,
    /// Mesh-busy cycles (utilization numerator).
    mesh_busy: Cycles,
    /// Total MACs issued to the mesh.
    macs: u64,
}

impl GemminiUnit {
    /// Creates an idle Gemmini unit.
    pub fn new(config: GemminiConfig) -> Self {
        GemminiUnit {
            config,
            regs: HashMap::new(),
            load_free: 0,
            store_free: 0,
            ex_free: 0,
            rs: VecDeque::new(),
            drain: 0,
            mesh_busy: 0,
            macs: 0,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &GemminiConfig {
        &self.config
    }

    /// Cycles the mesh spent computing since the last reset.
    pub fn mesh_busy_cycles(&self) -> Cycles {
        self.mesh_busy
    }

    /// Multiply-accumulates issued to the mesh since the last reset.
    pub fn total_macs(&self) -> u64 {
        self.macs
    }

    /// Mesh utilization over `elapsed` cycles: achieved MACs over peak.
    pub fn utilization(&self, elapsed: Cycles) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.macs as f64 / (elapsed as f64 * self.config.peak_macs_per_cycle() as f64)
    }

    /// Steady-state (pipelined) execution cycles of a compute tile on the
    /// mesh. Back-to-back tiles stream; a pipeline-fill skew is added
    /// only when the execute pipe was idle.
    ///
    /// * GEMM tile (`rows×cols` outputs over `ks` reduction steps): one
    ///   reduction step per cycle.
    /// * GEMV on the original mesh (`cols == 1`, `gemv == false`): one
    ///   PE column does the work and results propagate across the column
    ///   chain — the 1/DIM-utilization problem plus the inter-column
    ///   delay the paper's extension removes.
    /// * GEMV with the hardware extension (`gemv == true`): `DIM²`
    ///   elements of `A` are fetched per cycle from the strided banks and
    ///   `B` is broadcast: `⌈rows·ks/DIM²⌉` cycles at full utilization.
    pub fn compute_cycles(&self, rows: u64, cols: u64, ks: u64, gemv: bool) -> Cycles {
        let dim = self.config.dim as u64;
        if gemv && self.config.gemv_support {
            (rows * ks).div_ceil(dim * dim).max(1)
        } else if cols == 1 {
            ks + dim
        } else {
            ks.max(1)
        }
    }

    /// Pipeline fill cost charged when a compute tile starts on an idle
    /// mesh.
    fn compute_fill(&self, gemv: bool) -> Cycles {
        if gemv && self.config.gemv_support {
            2
        } else {
            match self.config.dataflow {
                Dataflow::OutputStationary => self.config.dim as u64,
                // WS pays an extra mesh pass to stream weights in.
                Dataflow::WeightStationary => 2 * self.config.dim as u64,
            }
        }
    }
}

impl Accelerator for GemminiUnit {
    fn dispatch(
        &mut self,
        op: &MicroOp,
        issue_cycle: Cycles,
        operands_ready: Cycles,
    ) -> DispatchResult {
        let cmd = match op.payload {
            Payload::Rocc(cmd) => cmd,
            // Non-RoCC traffic reaching Gemmini is a codegen error; treat
            // as a 1-cycle no-op.
            _ => {
                let t = issue_cycle.max(operands_ready);
                return DispatchResult {
                    accepted_at: t,
                    completes_at: t + 1,
                };
            }
        };

        // Reservation-station backpressure: an entry frees on completion.
        let mut accepted = issue_cycle.max(operands_ready);
        while self.rs.len() >= self.config.rs_entries {
            let head_done = self.rs.pop_front().expect("rs nonempty");
            accepted = accepted.max(head_done);
        }

        // Explicit dependencies from the code generator.
        let mut dep_ready = accepted;
        for src in op.sources() {
            if let Some(&t) = self.regs.get(&src) {
                dep_ready = dep_ready.max(t);
            }
        }

        let (unit_free, busy, finish) = match cmd {
            RoccCmd::Config | RoccCmd::Flush => {
                let start = dep_ready.max(self.ex_free);
                (&mut self.ex_free, 1, start + 1)
            }
            RoccCmd::Preload => {
                let cost = match self.config.dataflow {
                    // WS streams the weight tile through the mesh.
                    Dataflow::WeightStationary => self.config.dim as u64,
                    // OS preload just sets the output address.
                    Dataflow::OutputStationary => 1,
                };
                let start = dep_ready.max(self.ex_free);
                (&mut self.ex_free, cost, start + cost)
            }
            RoccCmd::Mvin { rows, cols, .. } => {
                // The DMA engine is pipelined: the load unit is occupied
                // for the transfer, while the DRAM access latency overlaps
                // across successive mvins.
                let transfer =
                    (rows as u64 * cols as u64 * 4).div_ceil(self.config.dma_bytes_per_cycle);
                let start = dep_ready.max(self.load_free);
                self.load_free = start + transfer;
                let finish = start + transfer + self.config.dma_latency;
                self.rs.push_back(finish);
                self.drain = self.drain.max(finish);
                if let Some(dst) = op.dst {
                    self.regs.insert(dst, finish);
                }
                return DispatchResult {
                    accepted_at: accepted,
                    completes_at: finish,
                };
            }
            RoccCmd::Mvout {
                rows,
                cols,
                pool_stride,
                ..
            } => {
                // Pooling happens in the mvout pipeline at no extra cost.
                let _ = pool_stride;
                let transfer =
                    (rows as u64 * cols as u64 * 4).div_ceil(self.config.dma_bytes_per_cycle);
                let start = dep_ready.max(self.store_free);
                self.store_free = start + transfer;
                let finish = start + transfer + self.config.dma_latency;
                self.rs.push_back(finish);
                self.drain = self.drain.max(finish);
                if let Some(dst) = op.dst {
                    self.regs.insert(dst, finish);
                }
                return DispatchResult {
                    accepted_at: accepted,
                    completes_at: finish,
                };
            }
            RoccCmd::ComputeTile {
                rows,
                cols,
                ks,
                gemv,
                ..
            } => {
                let start = dep_ready.max(self.ex_free);
                let mut cost = self.compute_cycles(rows as u64, cols as u64, ks as u64, gemv);
                if start > self.ex_free || self.ex_free == 0 {
                    // The mesh pipeline was idle: pay the fill skew.
                    cost += self.compute_fill(gemv);
                }
                self.mesh_busy += cost;
                self.macs += rows as u64 * cols as u64 * ks as u64;
                (&mut self.ex_free, cost, start + cost)
            }
            RoccCmd::LoopMatmul { m, n, k } => {
                // Coarse-grained FSM: internally sequences mvin / compute /
                // mvout with double buffering; mesh time and DMA overlap.
                let dim = self.config.dim as u64;
                let tiles = (m as u64).div_ceil(dim) * (n as u64).div_ceil(dim);
                let k_tiles = (k as u64).div_ceil(dim);
                let mesh = tiles * k_tiles * (dim + dim);
                let dma_elems = m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64;
                let dma = (dma_elems * 4).div_ceil(self.config.dma_bytes_per_cycle);
                let fsm_overhead = 10;
                let cost = mesh.max(dma) + self.config.dma_latency + fsm_overhead;
                self.mesh_busy += mesh;
                self.macs += m as u64 * n as u64 * k as u64;
                let start = dep_ready
                    .max(self.ex_free)
                    .max(self.load_free)
                    .max(self.store_free);
                self.load_free = start + cost;
                self.store_free = start + cost;
                (&mut self.ex_free, cost, start + cost)
            }
            // `RoccCmd` is non-exhaustive: unknown commands act as 1-cycle
            // configuration traffic.
            _ => {
                let start = dep_ready.max(self.ex_free);
                (&mut self.ex_free, 1, start + 1)
            }
        };
        let _ = busy;
        *unit_free = finish;

        self.rs.push_back(finish);
        self.drain = self.drain.max(finish);
        if let Some(dst) = op.dst {
            self.regs.insert(dst, finish);
        }

        // RoCC command-port acceptance is single-cycle once RS space
        // exists.
        DispatchResult {
            accepted_at: accepted,
            completes_at: finish,
        }
    }

    fn drain_cycle(&self) -> Cycles {
        self.drain
    }

    fn reset(&mut self) {
        self.regs.clear();
        self.rs.clear();
        self.load_free = 0;
        self.store_free = 0;
        self.ex_free = 0;
        self.drain = 0;
        self.mesh_busy = 0;
        self.macs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_cpu::{simulate_with_accel, CoreConfig};
    use soc_isa::TraceBuilder;

    fn os4() -> GemminiConfig {
        GemminiConfig::os_4x4_32kb()
    }

    #[test]
    fn gemv_extension_speeds_up_tiles() {
        let plain = GemminiUnit::new(os4());
        let ext = GemminiUnit::new(os4().with_gemv_support());
        // A 4-output, 64-deep matrix-vector tile.
        let t_plain = plain.compute_cycles(4, 1, 64, false);
        let t_ext = ext.compute_cycles(4, 1, 64, true);
        assert!(
            t_plain as f64 / t_ext as f64 > 3.0,
            "extension should approach DIMx: {t_plain} vs {t_ext}"
        );
    }

    #[test]
    fn gemm_tiles_unaffected_by_gemv_mode_flag_without_hw() {
        // Requesting gemv mode without hardware support falls back to the
        // plain mesh path.
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::ComputeTile {
                rows: 4,
                cols: 1,
                ks: 16,
                gemv: true,
                out_base: 0,
            },
            &[],
        );
        let t = b.finish();
        let c = simulate_with_accel(&CoreConfig::rocket(), &t, &mut unit);
        // Plain path: ks + dim fill = 20, plus startup/issue slack.
        assert!(c >= 20, "got {c}");
    }

    #[test]
    fn dma_latency_dominates_small_mvin() {
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::Mvin {
                rows: 4,
                cols: 4,
                base: 0,
            },
            &[],
        );
        b.fence();
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        assert!(c >= 40, "got {c}");
    }

    #[test]
    fn dependent_compute_waits_for_mvin() {
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        let a = b.rocc(
            RoccCmd::Mvin {
                rows: 4,
                cols: 4,
                base: 0,
            },
            &[],
        );
        b.rocc(
            RoccCmd::ComputeTile {
                rows: 4,
                cols: 4,
                ks: 4,
                gemv: false,
                out_base: 0,
            },
            &[a],
        );
        b.fence();
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        // mvin (>=44) then compute (8).
        assert!(c >= 50, "got {c}");
    }

    #[test]
    fn independent_mvin_and_compute_overlap() {
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        // Two independent streams: loads and computes overlap across
        // controllers.
        for _ in 0..8 {
            b.rocc(
                RoccCmd::Mvin {
                    rows: 4,
                    cols: 4,
                    base: 0,
                },
                &[],
            );
            b.rocc(
                RoccCmd::ComputeTile {
                    rows: 4,
                    cols: 4,
                    ks: 4,
                    gemv: false,
                    out_base: 0,
                },
                &[],
            );
        }
        b.fence();
        let overlapped = { simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit) };
        // Serial would be 8*(44+8) = 416; overlap should be well under.
        assert!(overlapped < 416, "got {overlapped}");
    }

    #[test]
    fn utilization_accounting() {
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::ComputeTile {
                rows: 4,
                cols: 4,
                ks: 4,
                gemv: false,
                out_base: 0,
            },
            &[],
        );
        b.fence();
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        assert_eq!(unit.total_macs(), 64);
        assert!(unit.utilization(c) > 0.0 && unit.utilization(c) <= 1.0);
    }

    #[test]
    fn ws_preload_costs_mesh_time() {
        let mut ws = GemminiUnit::new(GemminiConfig::ws_4x4_64kb());
        let mut os = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        for _ in 0..16 {
            b.rocc(RoccCmd::Preload, &[]);
            b.rocc(
                RoccCmd::ComputeTile {
                    rows: 4,
                    cols: 4,
                    ks: 4,
                    gemv: false,
                    out_base: 0,
                },
                &[],
            );
        }
        b.fence();
        let t = b.finish();
        let c_ws = simulate_with_accel(&CoreConfig::rocket(), &t, &mut ws);
        let c_os = simulate_with_accel(&CoreConfig::rocket(), &t, &mut os);
        assert!(c_ws > c_os, "ws {c_ws} vs os {c_os}");
    }

    #[test]
    fn rs_backpressure() {
        let mut cfg = os4();
        cfg.rs_entries = 2;
        let mut unit = GemminiUnit::new(cfg);
        let mut b = TraceBuilder::new();
        for _ in 0..16 {
            b.rocc(
                RoccCmd::Mvin {
                    rows: 16,
                    cols: 16,
                    base: 0,
                },
                &[],
            );
        }
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        // Each mvin occupies the load unit for its transfer (the DRAM
        // latency pipelines across mvins); with rs=2 the core stalls
        // behind them rather than running ahead.
        let transfer = 16 * 16 * 4 / GemminiConfig::os_4x4_32kb().dma_bytes_per_cycle;
        assert!(c >= 16 * transfer + 40, "got {c}");
    }

    #[test]
    fn coarse_loop_matmul_amortizes_large_problems() {
        let mut unit = GemminiUnit::new(os4());
        let mut b = TraceBuilder::new();
        b.rocc(
            RoccCmd::LoopMatmul {
                m: 64,
                n: 64,
                k: 64,
            },
            &[],
        );
        b.fence();
        let c = simulate_with_accel(&CoreConfig::rocket(), &b.finish(), &mut unit);
        assert_eq!(unit.total_macs(), 64 * 64 * 64);
        // Peak would be 64^3/16 = 16384 mesh cycles; FSM-sequenced tiles
        // run at half peak in this model. It must beat per-tile fine
        // grained dispatch from a 1-wide core without static mapping.
        assert!(c >= 16384, "got {c}");
        assert!(
            unit.utilization(c) > 0.2,
            "utilization {}",
            unit.utilization(c)
        );
    }
}
