//! # soc-gemmini — systolic-array accelerator timing model
//!
//! Models the domain-specific-accelerator corner of the paper's design
//! space: **Gemmini**, a decoupled RoCC co-processor with a `DIM × DIM`
//! FP32 processing-element mesh, a banked scratchpad, an optional
//! accumulator memory (weight-stationary dataflow), and load / store /
//! execute controllers fed through a reservation station.
//!
//! The model captures the mechanisms the paper's Gemmini analysis turns on:
//!
//! * **GEMV under-utilization** — on the original mesh, a matrix-vector
//!   product drives a single PE column (1/DIM utilization); the paper's
//!   hardware extension ([`GemminiConfig::gemv_support`]) strides `A`
//!   across `DIM+1` scratchpad banks and broadcasts the vector, restoring
//!   full utilization at a ~2% area cost.
//! * **Coarse vs fine-grained ISA** — coarse `LOOP_*` commands spend 5–7
//!   configuration commands before executing, which MPC-sized kernels never
//!   amortize; the fine-grained mapping instead demands scalar instruction
//!   throughput to construct RoCC commands (reduced by static mapping).
//! * **Fences** — Gemmini's reservation station does not track read-after-
//!   write hazards through memory, so a store→load round-trip needs an
//!   explicit fence that can stall the core for hundreds of cycles; the
//!   scratchpad-resident mapping eliminates the round-trips.
//! * **Activation tricks** — `abs`/`clip` built from ReLU (Equations 1–3
//!   of the paper) and max-pooling on `mvout` to cut the CPU's share of
//!   global max reductions by 4×.
//!
//! [`GemminiUnit`] implements the `soc_cpu::Accelerator` interface;
//! [`GemminiKernels`] hosts the software mappings with each optimization an
//! independent toggle ([`GemminiOpts`]) so the paper's ablations can be
//! reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod config;
mod model;

pub use codegen::{GemminiKernels, GemminiOpts, IsaStyle, MatId};
pub use config::{Dataflow, GemminiConfig};
pub use model::GemminiUnit;
