//! The ADMM solve loop (Algorithms 1–3 of the paper).

use crate::kernel::KernelCycles;
use crate::workspace::WsField;
use crate::{
    KernelExecutor, KernelId, ProblemDims, Result, SolverDims, TinyMpcCache, TinyMpcProblem,
    TinyMpcWorkspace,
};
use matlib::{Scalar, Vector};
use std::collections::BTreeMap;

/// Convergence and iteration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverSettings {
    /// Maximum ADMM iterations per solve.
    pub max_iterations: usize,
    /// Absolute tolerance on all four residuals.
    pub tolerance: f64,
    /// Check residuals every `check_interval` iterations (checking costs
    /// the reduction kernels).
    pub check_interval: usize,
    /// Hard cap on simulated cycles for one solve. The solver always
    /// completes the first iteration (so a best-so-far `u0` exists), then
    /// stops before any iteration predicted to overrun the budget and
    /// reports [`TerminationCause::Deadline`]. `None` disables budgeting.
    pub cycle_budget: Option<u64>,
    /// Residual magnitude beyond which the iteration is declared divergent
    /// ([`TerminationCause::Diverged`]) — converged ADMM residuals shrink,
    /// so residuals this large mean corrupted data, not slow progress.
    pub divergence_threshold: f64,
}

impl Default for SolverSettings {
    fn default() -> Self {
        SolverSettings {
            max_iterations: 100,
            tolerance: 1e-3,
            check_interval: 1,
            cycle_budget: None,
            divergence_threshold: 1e6,
        }
    }
}

/// Why a solve stopped iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationCause {
    /// All four residuals fell below tolerance.
    Converged,
    /// The iteration cap was reached without convergence.
    MaxIterations,
    /// The next iteration would have overrun the cycle budget; `u0` is the
    /// best iterate so far.
    Deadline,
    /// Residuals became non-finite or exceeded the divergence threshold.
    Diverged,
}

impl std::fmt::Display for TerminationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TerminationCause::Converged => "converged",
            TerminationCause::MaxIterations => "max-iterations",
            TerminationCause::Deadline => "deadline",
            TerminationCause::Diverged => "diverged",
        })
    }
}

/// Allocation-free outcome of one MPC solve
/// ([`AdmmSolver::solve_in_place`]).
///
/// Plain `Copy` data: the applied control stays staged in the solver's
/// arena ([`AdmmSolver::u0`]) and the per-kernel cycle table in
/// [`AdmmSolver::last_kernel_cycles`]. The allocating
/// [`AdmmSolver::solve`] packages all three into a [`SolveResult`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStatus {
    /// Whether all residuals fell below tolerance.
    pub converged: bool,
    /// Why the iteration stopped.
    pub termination: TerminationCause,
    /// ADMM iterations performed.
    pub iterations: usize,
    /// Final primal/dual residuals `(primal_state, dual_state,
    /// primal_input, dual_input)`.
    pub residuals: (f64, f64, f64, f64),
    /// Total simulated cycles charged by the executor (including setup).
    pub total_cycles: u64,
}

/// Outcome of one MPC solve.
#[derive(Debug, Clone)]
pub struct SolveResult<T> {
    /// Whether all residuals fell below tolerance.
    pub converged: bool,
    /// Why the iteration stopped.
    pub termination: TerminationCause,
    /// ADMM iterations performed.
    pub iterations: usize,
    /// First control input of the optimized trajectory (apply this to the
    /// plant).
    pub u0: Vector<T>,
    /// Final primal/dual residuals `(primal_state, dual_state,
    /// primal_input, dual_input)`.
    pub residuals: (f64, f64, f64, f64),
    /// Total simulated cycles charged by the executor (including setup).
    pub total_cycles: u64,
    /// Simulated cycles per kernel.
    pub kernel_cycles: BTreeMap<KernelId, u64>,
}

/// Hook invoked between ADMM iterations with mutable access to the
/// solver's state.
///
/// This is the seam the fault-injection layer uses to flip bits in the
/// cache or workspace at a chosen iteration; it is also usable for
/// instrumentation (residual logging, iterate recording).
pub trait SolveObserver<T> {
    /// Called after iteration `iteration` (1-based) completes, before the
    /// convergence check result is acted on.
    fn after_iteration(
        &mut self,
        iteration: usize,
        cache: &mut TinyMpcCache<T>,
        workspace: &mut TinyMpcWorkspace<T>,
    );
}

/// An observer that does nothing (the default for [`AdmmSolver::solve`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl<T> SolveObserver<T> for NullObserver {
    fn after_iteration(
        &mut self,
        _iteration: usize,
        _cache: &mut TinyMpcCache<T>,
        _workspace: &mut TinyMpcWorkspace<T>,
    ) {
    }
}

/// The TinyMPC ADMM solver.
///
/// Holds the problem, the precomputed Riccati cache, and a warm-startable
/// workspace. See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct AdmmSolver<T> {
    pub(crate) problem: TinyMpcProblem<T>,
    pub(crate) cache: TinyMpcCache<T>,
    pub(crate) workspace: TinyMpcWorkspace<T>,
    pub(crate) settings: SolverSettings,
    pub(crate) spec: SolverDims,
    pub(crate) last_kernel_cycles: KernelCycles,
}

impl<T: Scalar> AdmmSolver<T> {
    /// Creates a solver: validates the problem and computes the Riccati
    /// cache. The dims specialization ([`SolverDims`]) is selected
    /// automatically from the problem shape.
    ///
    /// # Errors
    ///
    /// Propagates problem-validation and cache-computation failures.
    pub fn new(problem: TinyMpcProblem<T>, settings: SolverSettings) -> Result<Self> {
        problem.validate()?;
        let cache = TinyMpcCache::compute(&problem)?;
        let dims = problem.dims();
        let workspace = TinyMpcWorkspace::new(dims.nx, dims.nu, dims.horizon);
        let spec = SolverDims::for_dims(dims.nx, dims.nu);
        Ok(AdmmSolver {
            problem,
            cache,
            workspace,
            settings,
            spec,
            last_kernel_cycles: KernelCycles::new(),
        })
    }

    /// The dims specialization the ADMM passes dispatch through.
    pub fn specialization(&self) -> SolverDims {
        self.spec
    }

    /// Overrides the dims specialization. The differential tests force
    /// [`SolverDims::Dynamic`] here to compare it against the
    /// const-generic paths.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadProblem`] if `spec` is a const-generic
    /// variant whose shape does not match the problem dimensions.
    pub fn set_specialization(&mut self, spec: SolverDims) -> Result<()> {
        if let Some((nx, nu)) = spec.shape() {
            let dims = self.problem.dims();
            if (nx, nu) != (dims.nx, dims.nu) {
                return Err(crate::Error::BadProblem {
                    reason: format!(
                        "specialization {spec:?} requires nx={nx}, nu={nu}; problem is {}x{}",
                        dims.nx, dims.nu
                    ),
                });
            }
        }
        self.spec = spec;
        Ok(())
    }

    /// The applied control staged by the last solve (first feasible
    /// slack input), borrowed straight from the arena.
    pub fn u0(&self) -> &[T] {
        self.workspace.u0()
    }

    /// Per-kernel cycle table of the last solve.
    pub fn last_kernel_cycles(&self) -> KernelCycles {
        self.last_kernel_cycles
    }

    /// The problem being solved.
    pub fn problem(&self) -> &TinyMpcProblem<T> {
        &self.problem
    }

    /// The precomputed cache.
    pub fn cache(&self) -> &TinyMpcCache<T> {
        &self.cache
    }

    /// Mutable access to the cache — used by the fault layer to inject
    /// corruption and by recovery paths to restore a pristine copy.
    pub fn cache_mut(&mut self) -> &mut TinyMpcCache<T> {
        &mut self.cache
    }

    /// The current workspace (trajectories of the last solve).
    pub fn workspace(&self) -> &TinyMpcWorkspace<T> {
        &self.workspace
    }

    /// Mutable access to the workspace.
    pub fn workspace_mut(&mut self) -> &mut TinyMpcWorkspace<T> {
        &mut self.workspace
    }

    /// The active solver settings.
    pub fn settings(&self) -> SolverSettings {
        self.settings
    }

    /// Replaces the solver settings (used by the degradation ladder to
    /// widen `check_interval` or impose a cycle budget between solves).
    pub fn set_settings(&mut self, settings: SolverSettings) {
        self.settings = settings;
    }

    /// Resets duals and slacks (disables warm starting for the next
    /// solve).
    pub fn cold_start(&mut self) {
        self.workspace.cold_start();
    }

    /// Sets the reference trajectory (one state per knot point).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadProblem`] if the length or any state
    /// dimension is wrong.
    pub fn set_reference(&mut self, xref: &[Vector<T>]) -> Result<()> {
        let dims = self.problem.dims();
        if xref.len() != dims.horizon || xref.iter().any(|v| v.len() != dims.nx) {
            return Err(crate::Error::BadProblem {
                reason: format!(
                    "reference must be {} states of dimension {}",
                    dims.horizon, dims.nx
                ),
            });
        }
        for (i, v) in xref.iter().enumerate() {
            self.workspace
                .knot_mut(WsField::XRef, i)
                .copy_from_slice(v.as_slice());
        }
        Ok(())
    }

    /// Solves the MPC problem from initial state `x0`, charging simulated
    /// cycles to `executor`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadProblem`] if `x0` has the wrong
    /// dimension, [`crate::Error::InvalidTrace`] if the executor rejects a
    /// kernel trace, [`crate::Error::CorruptedWorkspace`] if the pinned
    /// initial state changed mid-solve, and numeric errors (including
    /// [`matlib::Error::NonFinite`]) for corrupted or inconsistent data.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh SolveResult per call; use `solve_in_place` \
                (read `u0()` / `last_kernel_cycles()` from the arena) or \
                `solve_observed` when the packaged result is required"
    )]
    pub fn solve(
        &mut self,
        x0: &Vector<T>,
        executor: &mut dyn KernelExecutor,
    ) -> Result<SolveResult<T>> {
        self.solve_observed(x0, executor, &mut NullObserver)
    }

    /// [`solve`](Self::solve) with an inter-iteration [`SolveObserver`]
    /// hook (fault injection, instrumentation).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_observed(
        &mut self,
        x0: &Vector<T>,
        executor: &mut dyn KernelExecutor,
        observer: &mut dyn SolveObserver<T>,
    ) -> Result<SolveResult<T>> {
        let status = self.solve_in_place_observed(x0.as_slice(), executor, observer)?;
        Ok(SolveResult {
            converged: status.converged,
            termination: status.termination,
            iterations: status.iterations,
            u0: Vector::from_slice(self.workspace.u0()),
            residuals: status.residuals,
            total_cycles: status.total_cycles,
            kernel_cycles: self.last_kernel_cycles.to_map(),
        })
    }

    /// Problem dimensions (convenience).
    pub fn dims(&self) -> ProblemDims {
        self.problem.dims()
    }
}

#[cfg(test)]
// The deprecated `solve` wrapper stays covered here until it is
// removed: these tests exercise result packaging on top of the arena
// hot path.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{problems, KernelExecutor, NullExecutor};

    fn solve_di(x0: &[f64]) -> (SolveResult<f64>, AdmmSolver<f64>) {
        let p = problems::double_integrator::<f64>(20).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let x0 = Vector::from_slice(x0);
        let r = s.solve(&x0, &mut NullExecutor).unwrap();
        (r, s)
    }

    #[test]
    fn converges_on_double_integrator() {
        let (r, s) = solve_di(&[1.0, 0.0]);
        assert!(r.converged, "residuals {:?}", r.residuals);
        assert!(s.workspace().is_finite());
    }

    #[test]
    fn unconstrained_solution_matches_lqr() {
        // Small initial state: no constraint is active, so the MPC input
        // must track the infinite-horizon LQR law computed WITHOUT the rho
        // augmentation (ADMM converges to the true problem's optimum).
        let p = problems::double_integrator::<f64>(30).unwrap();
        let nx = 2;
        let q = matlib::Matrix::from_diagonal(&[p.q_diag[0], p.q_diag[1]]);
        let rmat = matlib::Matrix::from_diagonal(&[p.r_diag[0]]);
        let (k_true, _) = matlib::lqr_gains(&p.a, &p.b, &q, &rmat).unwrap();
        let mut s = AdmmSolver::new(
            p,
            SolverSettings {
                max_iterations: 500,
                tolerance: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let x0 = Vector::from_slice(&[0.1, 0.0]);
        let r = s.solve(&x0, &mut NullExecutor).unwrap();
        assert!(r.converged);
        let u_lqr = -(k_true[(0, 0)] * x0[0] + k_true[(0, 1)] * x0[1]);
        assert!(
            (r.u0[0] - u_lqr).abs() < 0.02 * u_lqr.abs().max(0.01),
            "MPC u0 {} vs LQR {}",
            r.u0[0],
            u_lqr
        );
        let _ = nx;
    }

    #[test]
    fn constraints_are_respected() {
        // Large initial offset: the LQR input would exceed the bound, so
        // the slack projection must saturate.
        let (r, s) = solve_di(&[50.0, 0.0]);
        let p = s.problem();
        assert!(r.u0[0] >= p.u_min - 1e-9 && r.u0[0] <= p.u_max + 1e-9);
        // And it should be pinned at a bound.
        assert!(
            (r.u0[0] - p.u_min).abs() < 1e-6 || (r.u0[0] - p.u_max).abs() < 1e-6,
            "expected saturation, got {}",
            r.u0[0]
        );
    }

    #[test]
    fn quadrotor_converges_and_stabilizes_closed_loop() {
        let p = problems::quadrotor_hover::<f64>(10).unwrap();
        let a = p.a.clone();
        let b = p.b.clone();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let mut x = s.problem().hover_offset_state(0.3);
        let mut worst_iterations = 0;
        for _step in 0..400 {
            let r = s.solve(&x, &mut NullExecutor).unwrap();
            worst_iterations = worst_iterations.max(r.iterations);
            let ax = a.matvec(&x).unwrap();
            let bu = b.matvec(&r.u0).unwrap();
            x = ax.add(&bu).unwrap();
            assert!(x.is_finite(), "state diverged");
        }
        assert!(x.max_abs() < 0.05, "did not reach hover: {}", x.max_abs());
        assert!(worst_iterations <= 100);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let p = problems::quadrotor_hover::<f64>(10).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let x0 = s.problem().hover_offset_state(0.2);
        let cold = s.solve(&x0, &mut NullExecutor).unwrap();
        // Slightly perturbed re-solve with warm duals.
        let x1 = s.problem().hover_offset_state(0.19);
        let warm = s.solve(&x1, &mut NullExecutor).unwrap();
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn f32_solution_tracks_f64() {
        let p64 = problems::double_integrator::<f64>(15).unwrap();
        let p32 = problems::double_integrator::<f32>(15).unwrap();
        let mut s64 = AdmmSolver::new(p64, SolverSettings::default()).unwrap();
        let mut s32 = AdmmSolver::new(p32, SolverSettings::default()).unwrap();
        let r64 = s64
            .solve(&Vector::from_slice(&[2.0, -0.5]), &mut NullExecutor)
            .unwrap();
        let r32 = s32
            .solve(&Vector::from_slice(&[2.0f32, -0.5]), &mut NullExecutor)
            .unwrap();
        assert!(r64.converged && r32.converged);
        assert!(
            (r64.u0[0] - r32.u0[0] as f64).abs() < 1e-3,
            "f64 {} vs f32 {}",
            r64.u0[0],
            r32.u0[0]
        );
    }

    /// Charges one cycle per invocation so accounting is countable.
    struct UnitExecutor;

    impl KernelExecutor for UnitExecutor {
        fn name(&self) -> String {
            "unit".into()
        }
        fn kernel_cycles(&mut self, _k: KernelId, _d: &ProblemDims) -> Result<u64> {
            Ok(1)
        }
        fn setup_cycles(&mut self, _d: &ProblemDims) -> Result<u64> {
            Ok(7)
        }
    }

    #[test]
    fn cycle_accounting_is_exact() {
        let p = problems::double_integrator::<f64>(10).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let r = s
            .solve(&Vector::from_slice(&[1.0, 0.0]), &mut UnitExecutor)
            .unwrap();
        let n = 10;
        let iters = r.iterations as u64;
        // Per iteration: 4 iterative kernels × (N−1) + UpdateLinearCost4
        // + 6 strip/cost kernels... count exactly:
        //   BackwardPass1/2, ForwardPass1/2: 4(N−1)
        //   UpdateSlack1/2, UpdateDual1: 3
        //   UpdateLinearCost1..3: 3, UpdateLinearCost4: 1
        //   Residuals: 4
        let per_iter = 4 * (n - 1) + 3 + 3 + 1 + 4;
        // Plus the pre-loop linear-cost init (4) and setup (7).
        let expected = 7 + 4 + iters * per_iter;
        assert_eq!(r.total_cycles, expected, "iterations {iters}");
    }

    #[test]
    fn bad_x0_rejected() {
        let p = problems::double_integrator::<f64>(10).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        assert!(s
            .solve(&Vector::from_slice(&[1.0]), &mut NullExecutor)
            .is_err());
    }

    #[test]
    fn reference_tracking_changes_solution() {
        let p = problems::double_integrator::<f64>(20).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let x0 = Vector::from_slice(&[0.0, 0.0]);
        let rest = s.solve(&x0, &mut NullExecutor).unwrap();
        // Now ask to move to position 1.
        let target = Vector::from_slice(&[1.0, 0.0]);
        let xref: Vec<_> = (0..20).map(|_| target.clone()).collect();
        s.set_reference(&xref).unwrap();
        s.cold_start();
        let track = s.solve(&x0, &mut NullExecutor).unwrap();
        assert!(
            track.u0[0] > rest.u0[0] + 1e-3,
            "tracking should push forward"
        );
    }

    #[test]
    fn termination_cause_reported() {
        let (r, _) = solve_di(&[1.0, 0.0]);
        assert_eq!(r.termination, TerminationCause::Converged);
        let p = problems::double_integrator::<f64>(20).unwrap();
        let settings = SolverSettings {
            max_iterations: 2,
            tolerance: 1e-12,
            ..Default::default()
        };
        let mut s = AdmmSolver::new(p, settings).unwrap();
        let r = s
            .solve(&Vector::from_slice(&[5.0, 0.0]), &mut NullExecutor)
            .unwrap();
        assert_eq!(r.termination, TerminationCause::MaxIterations);
        assert!(!r.converged);
    }

    #[test]
    fn cycle_budget_stops_early_with_finite_u0() {
        let p = problems::double_integrator::<f64>(10).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let x0 = Vector::from_slice(&[50.0, 0.0]);
        let full = s.solve(&x0, &mut UnitExecutor).unwrap();
        assert!(full.iterations > 2, "need a multi-iteration baseline");

        // Budget for roughly two iterations: the solve must stop on the
        // Deadline rung well short of the unbudgeted iteration count.
        let budget = full.total_cycles * 2 / full.iterations as u64;
        let settings = SolverSettings {
            cycle_budget: Some(budget),
            ..Default::default()
        };
        let mut s =
            AdmmSolver::new(problems::double_integrator::<f64>(10).unwrap(), settings).unwrap();
        let r = s.solve(&x0, &mut UnitExecutor).unwrap();
        assert_eq!(r.termination, TerminationCause::Deadline);
        assert!(r.iterations < full.iterations);
        assert!(r.total_cycles <= budget, "predictive stop overran");
        assert!(r.u0.is_finite());
    }

    #[test]
    fn budget_always_runs_first_iteration() {
        let p = problems::double_integrator::<f64>(10).unwrap();
        let settings = SolverSettings {
            cycle_budget: Some(1),
            ..Default::default()
        };
        let mut s = AdmmSolver::new(p, settings).unwrap();
        let r = s
            .solve(&Vector::from_slice(&[1.0, 0.0]), &mut UnitExecutor)
            .unwrap();
        assert_eq!(r.iterations, 1);
        assert_eq!(r.termination, TerminationCause::Deadline);
        assert!(r.u0.is_finite());
    }

    /// Injects a huge value into a dual variable at a chosen iteration.
    struct DualBlast {
        at: usize,
        value: f64,
    }

    impl SolveObserver<f64> for DualBlast {
        fn after_iteration(
            &mut self,
            iteration: usize,
            _cache: &mut TinyMpcCache<f64>,
            workspace: &mut TinyMpcWorkspace<f64>,
        ) {
            if iteration == self.at {
                workspace.knot_mut(WsField::Y, 0)[0] = self.value;
            }
        }
    }

    #[test]
    fn divergent_iterates_detected() {
        let p = problems::double_integrator::<f64>(20).unwrap();
        let settings = SolverSettings {
            tolerance: 1e-12,
            max_iterations: 50,
            ..Default::default()
        };
        let mut s = AdmmSolver::new(p, settings).unwrap();
        let mut blast = DualBlast { at: 2, value: 1e30 };
        let r = s
            .solve_observed(
                &Vector::from_slice(&[1.0, 0.0]),
                &mut NullExecutor,
                &mut blast,
            )
            .unwrap();
        assert_eq!(r.termination, TerminationCause::Diverged);
        // The applied control still comes from the clipped slack, so it
        // stays finite even though the iterates exploded.
        assert!(r.u0.is_finite());
    }

    /// Flips the pinned initial state mid-solve.
    struct X0Flip;

    impl SolveObserver<f64> for X0Flip {
        fn after_iteration(
            &mut self,
            iteration: usize,
            _cache: &mut TinyMpcCache<f64>,
            workspace: &mut TinyMpcWorkspace<f64>,
        ) {
            if iteration == 1 {
                workspace.knot_mut(WsField::X, 0)[0] += 1.0;
            }
        }
    }

    #[test]
    fn x0_corruption_detected() {
        let p = problems::double_integrator::<f64>(20).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        let err = s
            .solve_observed(
                &Vector::from_slice(&[1.0, 0.0]),
                &mut NullExecutor,
                &mut X0Flip,
            )
            .unwrap_err();
        assert!(matches!(err, crate::Error::CorruptedWorkspace { .. }));
    }

    #[test]
    fn non_finite_x0_rejected() {
        let p = problems::double_integrator::<f64>(10).unwrap();
        let mut s = AdmmSolver::new(p, SolverSettings::default()).unwrap();
        assert!(s
            .solve(&Vector::from_slice(&[f64::NAN, 0.0]), &mut NullExecutor)
            .is_err());
    }
}
