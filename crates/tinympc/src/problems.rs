//! Canonical problem instances: the Crazyflie-class quadrotor the paper's
//! workload sizes come from (12 states × 4 inputs), and a double
//! integrator for tests.

use crate::{Result, TinyMpcProblem};
use matlib::{Matrix, Scalar, Vector};

/// Number of series terms used to discretize the continuous dynamics.
const EXP_TERMS: usize = 8;

/// Zero-order-hold discretization via truncated matrix exponential:
/// `Ad = Σ (Ac·dt)ⁱ/i!`, `Bd = (Σ Acⁱ·dtⁱ⁺¹/(i+1)!)·Bc`.
fn discretize<T: Scalar>(ac: &Matrix<T>, bc: &Matrix<T>, dt: f64) -> (Matrix<T>, Matrix<T>) {
    let n = ac.rows();
    let dt_t = T::from_f64(dt);
    // Ad = Σ tᵢ with t₀ = I, tᵢ = tᵢ₋₁ · Ac · dt / i.
    let mut ad = Matrix::<T>::identity(n);
    let mut term = Matrix::<T>::identity(n);
    // ∫exp = Σ cᵢ with c₀ = I·dt, cᵢ = cᵢ₋₁ · Ac · dt / (i+1).
    let mut c = Matrix::<T>::identity(n).scale(dt_t);
    let mut b_integral = c.clone();
    for i in 1..=EXP_TERMS {
        term = term
            .matmul(ac)
            .expect("square")
            .scale(dt_t / T::from_f64(i as f64));
        ad = ad.add(&term).expect("same shape");
        c = c
            .matmul(ac)
            .expect("square")
            .scale(dt_t / T::from_f64(i as f64 + 1.0));
        b_integral = b_integral.add(&c).expect("same shape");
    }
    let bd = b_integral.matmul(bc).expect("inner dims");
    (ad, bd)
}

/// The Crazyflie-class quadrotor linearized about hover: 12 states
/// (position, roll-pitch-yaw, linear velocity, angular velocity) and 4
/// motor-thrust inputs — the `12 × 4` operand sizes the paper quotes for
/// UAV MPC.
///
/// Control runs at 100 Hz (`dt = 0.01 s`). Inputs are thrust deltas from
/// hover, box-constrained so a motor can neither reverse nor exceed its
/// maximum.
///
/// # Errors
///
/// Returns an error if `horizon < 2` (propagated from validation).
///
/// # Examples
///
/// ```
/// let p = tinympc::problems::quadrotor_hover::<f64>(10)?;
/// assert_eq!(p.dims().nx, 12);
/// assert_eq!(p.dims().nu, 4);
/// # Ok::<(), tinympc::Error>(())
/// ```
pub fn quadrotor_hover<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 0.01;
    let g = 9.81;
    let mass = 0.035;
    let jx = 1.66e-5;
    let jy = 1.66e-5;
    let jz = 2.93e-5;
    let arm = 0.046 / std::f64::consts::SQRT_2; // X-configuration lever arm
    let yaw_coeff = 0.0055; // motor torque-to-thrust ratio

    // States: [px py pz, roll pitch yaw, vx vy vz, wx wy wz].
    let mut ac = Matrix::<T>::zeros(12, 12);
    for i in 0..3 {
        ac[(i, 6 + i)] = T::ONE; // position' = velocity
        ac[(3 + i, 9 + i)] = T::ONE; // attitude' = angular rate
    }
    // Small-angle gravity coupling: ax = g·pitch, ay = −g·roll.
    ac[(6, 4)] = T::from_f64(g);
    ac[(7, 3)] = T::from_f64(-g);

    // Inputs: per-motor thrust deltas (N). Motor sign conventions for an
    // X-configuration (front-left, back-left, back-right, front-right).
    let roll_sign = [-1.0, -1.0, 1.0, 1.0];
    let pitch_sign = [-1.0, 1.0, 1.0, -1.0];
    let yaw_sign = [-1.0, 1.0, -1.0, 1.0];
    let mut bc = Matrix::<T>::zeros(12, 4);
    for j in 0..4 {
        bc[(8, j)] = T::from_f64(1.0 / mass); // vertical acceleration
        bc[(9, j)] = T::from_f64(arm * roll_sign[j] / jx);
        bc[(10, j)] = T::from_f64(arm * pitch_sign[j] / jy);
        bc[(11, j)] = T::from_f64(yaw_coeff * yaw_sign[j] / jz);
    }

    let (a, b) = discretize(&ac, &bc, dt);

    // TinyMPC-style diagonal costs: position and yaw weighted heavily.
    let q_diag = Vector::from_fn(12, |i| {
        T::from_f64(match i {
            0 | 1 => 100.0, // x, y position
            2 => 400.0,     // altitude
            3 | 4 => 4.0,   // roll, pitch
            5 => 100.0,     // yaw
            6..=8 => 4.0,   // linear velocity
            _ => 2.0,       // angular rate
        })
    });
    let r_diag = Vector::splat(4, T::from_f64(4.0));

    // Hover thrust per motor is m·g/4 ≈ 0.086 N; deltas are bounded so
    // total thrust stays within [0, 2× hover].
    let u_lim = mass * g / 4.0;

    let problem = TinyMpcProblem {
        a,
        b,
        q_diag,
        r_diag,
        horizon,
        rho: T::from_f64(1.0),
        u_min: T::from_f64(-u_lim),
        u_max: T::from_f64(u_lim),
        x_min: T::from_f64(-1.0e3),
        x_max: T::from_f64(1.0e3),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// A 1-axis double integrator (2 states, 1 input) — the smallest useful
/// MPC problem, used for fast tests.
///
/// # Errors
///
/// Returns an error if `horizon < 2`.
pub fn double_integrator<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 0.05;
    let a = Matrix::from_vec(2, 2, vec![T::ONE, T::from_f64(dt), T::ZERO, T::ONE])
        .expect("static shape");
    let b = Matrix::from_vec(2, 1, vec![T::from_f64(0.5 * dt * dt), T::from_f64(dt)])
        .expect("static shape");
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_slice(&[T::from_f64(10.0), T::ONE]),
        r_diag: Vector::from_slice(&[T::from_f64(0.5)]),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-2.0),
        u_max: T::from_f64(2.0),
        x_min: T::from_f64(-100.0),
        x_max: T::from_f64(100.0),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// An inverted pendulum on a cart (4 states, 1 input), linearized about
/// the upright equilibrium — the classic underactuated benchmark.
///
/// States: `[cart position, cart velocity, pole angle, pole rate]`;
/// input: horizontal force on the cart (N).
///
/// # Errors
///
/// Returns an error if `horizon < 2`.
pub fn cartpole<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 0.02;
    let g = 9.81;
    let m_cart = 1.0;
    let m_pole = 0.2;
    let length = 0.5; // distance to the pole's center of mass

    // Continuous linearization about the upright fixed point.
    let denom = m_cart; // small-mass approximation for the cart row
    let mut ac = Matrix::<T>::zeros(4, 4);
    ac[(0, 1)] = T::ONE;
    ac[(2, 3)] = T::ONE;
    ac[(1, 2)] = T::from_f64(-m_pole * g / denom);
    ac[(3, 2)] = T::from_f64((m_cart + m_pole) * g / (denom * length));
    let mut bc = Matrix::<T>::zeros(4, 1);
    bc[(1, 0)] = T::from_f64(1.0 / denom);
    bc[(3, 0)] = T::from_f64(-1.0 / (denom * length));

    let (a, b) = discretize(&ac, &bc, dt);
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_slice(&[T::from_f64(10.0), T::ONE, T::from_f64(50.0), T::ONE]),
        r_diag: Vector::from_slice(&[T::from_f64(0.1)]),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-10.0),
        u_max: T::from_f64(10.0),
        x_min: T::from_f64(-50.0),
        x_max: T::from_f64(50.0),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// A 3-DoF planar rocket-landing problem (6 states, 2 inputs): lateral and
/// vertical position/velocity plus a pitch state, controlled by gimballed
/// thrust deltas about the hover trim.
///
/// States: `[x, z, pitch, vx, vz, pitch rate]`; inputs:
/// `[thrust delta, gimbal torque]`.
///
/// # Errors
///
/// Returns an error if `horizon < 2`.
pub fn rocket_landing<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 0.05;
    let g = 9.81;
    let mass = 10.0;
    let inertia = 5.0;

    let mut ac = Matrix::<T>::zeros(6, 6);
    ac[(0, 3)] = T::ONE;
    ac[(1, 4)] = T::ONE;
    ac[(2, 5)] = T::ONE;
    // Pitching tilts the (trimmed, gravity-cancelling) thrust vector
    // sideways.
    ac[(3, 2)] = T::from_f64(g);
    let mut bc = Matrix::<T>::zeros(6, 2);
    bc[(4, 0)] = T::from_f64(1.0 / mass); // thrust delta -> vertical accel
    bc[(5, 1)] = T::from_f64(1.0 / inertia); // gimbal torque -> pitch accel

    let (a, b) = discretize(&ac, &bc, dt);
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_slice(&[
            T::from_f64(50.0),
            T::from_f64(100.0),
            T::from_f64(10.0),
            T::from_f64(5.0),
            T::from_f64(10.0),
            T::ONE,
        ]),
        r_diag: Vector::from_slice(&[T::from_f64(1.0), T::from_f64(1.0)]),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-50.0),
        u_max: T::from_f64(50.0),
        x_min: T::from_f64(-1.0e3),
        x_max: T::from_f64(1.0e3),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// Satellite rendezvous under Clohessy–Wiltshire relative dynamics
/// (6 states, 3 inputs): chaser position/velocity relative to a target
/// in the local-vertical local-horizontal frame, controlled by thruster
/// accelerations.
///
/// States: `[x, y, z, vx, vy, vz]` (radial, along-track, cross-track,
/// metres and m/s); inputs: thrust accelerations (m/s²). The state box
/// doubles as the docking safety corridor: the chaser must stay within
/// ±10 m / ±10 m/s of the target throughout the approach.
///
/// # Errors
///
/// Returns an error if `horizon < 2`.
pub fn satellite_rendezvous<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 1.0; // docking unfolds over seconds, not milliseconds
    let n = 0.00113; // mean motion of a ~400 km LEO target (rad/s)

    // Clohessy–Wiltshire linearized relative dynamics:
    //   x¨ =  3n²x + 2n·vy + ux
    //   y¨ = −2n·vx        + uy
    //   z¨ = −n²z          + uz
    let mut ac = Matrix::<T>::zeros(6, 6);
    ac[(0, 3)] = T::ONE;
    ac[(1, 4)] = T::ONE;
    ac[(2, 5)] = T::ONE;
    ac[(3, 0)] = T::from_f64(3.0 * n * n);
    ac[(3, 4)] = T::from_f64(2.0 * n);
    ac[(4, 3)] = T::from_f64(-2.0 * n);
    ac[(5, 2)] = T::from_f64(-n * n);
    let mut bc = Matrix::<T>::zeros(6, 3);
    for j in 0..3 {
        bc[(3 + j, j)] = T::ONE;
    }

    let (a, b) = discretize(&ac, &bc, dt);
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_fn(6, |i| T::from_f64(if i < 3 { 50.0 } else { 5.0 })),
        r_diag: Vector::splat(3, T::from_f64(2.0)),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-0.2),
        u_max: T::from_f64(0.2),
        x_min: T::from_f64(-10.0),
        x_max: T::from_f64(10.0),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

/// Rocket soft-landing with a thrust cone (6 states, 3 inputs), per the
/// Conic-TinyMPC extension: translational dynamics about the hover trim
/// with the *physical* thrust vector constrained to a second-order cone
/// around vertical.
///
/// States: `[x, y, z, vx, vy, vz]`; inputs: thrust-acceleration deltas
/// about the gravity-cancelling trim (m/s²). With deltas `u` the real
/// thrust acceleration is `(ux, uy, uz + g)`, and the gimbal limit
/// `‖(ux, uy)‖ ≤ tan(θ_max)·(uz + g)` becomes a shifted
/// [`crate::SocConstraint`] with `offset = g`.
///
/// # Errors
///
/// Returns an error if `horizon < 2`.
pub fn rocket_soft_landing<T: Scalar>(horizon: usize) -> Result<TinyMpcProblem<T>> {
    let dt = 0.1;
    let g = 9.81;
    let theta_max_deg = 25.0_f64;

    // Double-integrator translation; gravity is cancelled by the trim.
    let mut ac = Matrix::<T>::zeros(6, 6);
    ac[(0, 3)] = T::ONE;
    ac[(1, 4)] = T::ONE;
    ac[(2, 5)] = T::ONE;
    let mut bc = Matrix::<T>::zeros(6, 3);
    for j in 0..3 {
        bc[(3 + j, j)] = T::ONE;
    }

    let (a, b) = discretize(&ac, &bc, dt);
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_slice(&[
            T::from_f64(10.0),
            T::from_f64(10.0),
            T::from_f64(50.0),
            T::from_f64(2.0),
            T::from_f64(2.0),
            T::from_f64(10.0),
        ]),
        r_diag: Vector::splat(3, T::ONE),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-8.0),
        u_max: T::from_f64(8.0),
        x_min: T::from_f64(-1.0e3),
        x_max: T::from_f64(1.0e3),
        input_cones: vec![crate::SocConstraint {
            axis: 2,
            lateral: vec![0, 1],
            mu: T::from_f64(theta_max_deg.to_radians().tan()),
            offset: T::from_f64(g),
        }],
    };
    problem.validate()?;
    Ok(problem)
}

/// A randomized stable MPC problem for fuzzing the solver: a contraction
/// plus controllable input directions, diagonal costs, loose box bounds.
/// Deterministic in `seed`.
///
/// # Errors
///
/// Returns an error if `horizon < 2` or the generated dimensions are
/// degenerate (not expected for valid inputs).
pub fn random_stable<T: Scalar>(
    nx: usize,
    nu: usize,
    horizon: usize,
    seed: u64,
) -> Result<TinyMpcProblem<T>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    // Strictly diagonally-dominant contraction: |diag| + Σ|off-diag| < 1
    // by the Gershgorin bound, so A is stable for every seed.
    let off_scale = 0.08 / nx.max(1) as f64;
    let mut a = Matrix::<T>::zeros(nx, nx);
    for r in 0..nx {
        for c in 0..nx {
            let v = if r == c { 0.9 } else { off_scale * next() };
            a[(r, c)] = T::from_f64(v);
        }
    }
    let b = Matrix::from_fn(nx, nu, |_, _| T::from_f64(0.5 * next()));
    let problem = TinyMpcProblem {
        a,
        b,
        q_diag: Vector::from_fn(nx, |_| T::from_f64(1.0 + next().abs())),
        r_diag: Vector::from_fn(nu, |_| T::from_f64(0.5 + next().abs())),
        horizon,
        rho: T::ONE,
        u_min: T::from_f64(-5.0),
        u_max: T::from_f64(5.0),
        x_min: T::from_f64(-100.0),
        x_max: T::from_f64(100.0),
        input_cones: Vec::new(),
    };
    problem.validate()?;
    Ok(problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartpole_is_open_loop_unstable_but_stabilizable() {
        let p = cartpole::<f64>(20).unwrap();
        // Open loop: the pole falls (angle grows from a perturbation).
        let mut x = Vector::from_slice(&[0.0, 0.0, 0.05, 0.0]);
        for _ in 0..100 {
            x = p.a.matvec(&x).unwrap();
        }
        assert!(
            x[2].abs() > 0.5,
            "upright pendulum should be unstable: {:?}",
            x[2]
        );
        // But the Riccati cache exists, i.e. (A, B) is stabilizable.
        assert!(crate::TinyMpcCache::compute(&p).is_ok());
    }

    #[test]
    fn rocket_landing_dimensions() {
        let p = rocket_landing::<f64>(12).unwrap();
        assert_eq!(p.dims().nx, 6);
        assert_eq!(p.dims().nu, 2);
        assert!(crate::TinyMpcCache::compute(&p).is_ok());
    }

    #[test]
    fn satellite_rendezvous_dimensions_and_stabilizable() {
        let p = satellite_rendezvous::<f64>(12).unwrap();
        assert_eq!(p.dims().nx, 6);
        assert_eq!(p.dims().nu, 3);
        assert!(p.input_cones.is_empty());
        assert!(crate::TinyMpcCache::compute(&p).is_ok());
        // CW coupling: radial acceleration feeds back from along-track
        // velocity (the 2n·vy term survives discretization).
        assert!(p.a[(3, 4)].abs() > 0.0);
    }

    #[test]
    fn rocket_soft_landing_has_a_thrust_cone() {
        let p = rocket_soft_landing::<f64>(12).unwrap();
        assert_eq!(p.dims().nx, 6);
        assert_eq!(p.dims().nu, 3);
        assert_eq!(p.input_cones.len(), 1);
        let cone = &p.input_cones[0];
        assert_eq!(cone.axis, 2);
        assert_eq!(cone.lateral, vec![0, 1]);
        // tan(25°) ≈ 0.4663; trim offset is standard gravity.
        assert!((cone.mu - 0.466_307_658).abs() < 1e-6);
        assert!((cone.offset - 9.81).abs() < 1e-12);
        assert!(crate::TinyMpcCache::compute(&p).is_ok());
        // The trim point (zero deltas) is strictly inside the cone.
        let trim = Vector::zeros(3);
        assert!(cone.margin(trim.as_slice()) > 0.0);
    }

    #[test]
    fn random_stable_is_deterministic() {
        let a = random_stable::<f64>(6, 2, 10, 42).unwrap();
        let b = random_stable::<f64>(6, 2, 10, 42).unwrap();
        assert_eq!(a.a, b.a);
        assert!(
            a.a.max_abs_diff(&random_stable::<f64>(6, 2, 10, 43).unwrap().a)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn quadrotor_dimensions() {
        let p = quadrotor_hover::<f64>(10).unwrap();
        assert_eq!(p.a.shape(), (12, 12));
        assert_eq!(p.b.shape(), (12, 4));
        assert!(p.a.is_finite() && p.b.is_finite());
    }

    #[test]
    fn quadrotor_discretization_sane() {
        let p = quadrotor_hover::<f64>(10).unwrap();
        // Ad ≈ I for small dt: diagonal near one.
        for i in 0..12 {
            assert!(
                (p.a[(i, i)] - 1.0).abs() < 0.1,
                "A[{i}][{i}] = {}",
                p.a[(i, i)]
            );
        }
        // Equal thrust on all motors accelerates purely vertically.
        let u = Vector::splat(4, 0.01);
        let dx = p.b.matvec(&u).unwrap();
        assert!(dx[8] > 0.0, "vertical velocity must increase");
        assert!(dx[9].abs() < 1e-9 && dx[10].abs() < 1e-9 && dx[11].abs() < 1e-9);
    }

    #[test]
    fn quadrotor_is_controllable_enough_for_dare() {
        // The cache computation exercises stabilizability.
        let p = quadrotor_hover::<f64>(10).unwrap();
        let c = crate::TinyMpcCache::compute(&p).unwrap();
        assert!(c.kinf.is_finite());
    }

    #[test]
    fn double_integrator_valid() {
        let p = double_integrator::<f32>(20).unwrap();
        assert_eq!(p.dims().nx, 2);
        assert_eq!(p.dims().nu, 1);
    }

    #[test]
    fn horizon_of_one_rejected() {
        assert!(double_integrator::<f64>(1).is_err());
    }
}
