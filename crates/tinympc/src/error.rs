use std::fmt;

/// Errors from problem construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A dimension in the problem definition is inconsistent.
    BadProblem {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The Riccati cache could not be computed.
    Cache(matlib::Error),
    /// A linear-algebra operation failed during solving (indicates an
    /// internal inconsistency).
    Numeric(matlib::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadProblem { reason } => write!(f, "invalid problem: {reason}"),
            Error::Cache(e) => write!(f, "failed to compute the Riccati cache: {e}"),
            Error::Numeric(e) => write!(f, "numeric failure while solving: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cache(e) | Error::Numeric(e) => Some(e),
            Error::BadProblem { .. } => None,
        }
    }
}

impl From<matlib::Error> for Error {
    fn from(e: matlib::Error) -> Self {
        Error::Numeric(e)
    }
}
