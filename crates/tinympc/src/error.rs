use std::fmt;

/// Errors from problem construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A dimension in the problem definition is inconsistent.
    BadProblem {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The Riccati cache could not be computed.
    Cache(matlib::Error),
    /// A linear-algebra operation failed during solving (indicates an
    /// internal inconsistency).
    Numeric(matlib::Error),
    /// A generated micro-op trace failed static verification — the
    /// back-end would execute a stream with hazards, out-of-bounds
    /// accesses, or malformed commands (e.g. after a fault corrupted it).
    InvalidTrace {
        /// Back-end whose trace failed verification.
        backend: String,
        /// Rendered verifier report.
        report: String,
    },
    /// A solver invariant was violated mid-solve — e.g. the pinned initial
    /// state `x[0]` changed underneath the solver, which only a memory
    /// fault can cause.
    CorruptedWorkspace {
        /// Description of the violated invariant.
        what: String,
    },
    /// A static-analysis claim failed to hold against trace simulation —
    /// an analytical cycle bound excluded the simulated count, or a
    /// bounds-pruned sweep produced a different Pareto frontier than the
    /// trace-priced reference.
    AnalysisMismatch {
        /// Description of the violated claim.
        what: String,
    },
    /// A sweep work item panicked on every attempt of its retry budget.
    /// The surrounding batch still completes: the failed item surfaces
    /// as this error in its result slot (and as a `FAILED` row in the
    /// rendered report) instead of aborting the process.
    ShardFailed {
        /// Index of the work item within its batch.
        item: usize,
        /// Attempts made before giving up (the full retry budget).
        attempts: u32,
        /// Stringified panic payload from the last attempt.
        payload: String,
    },
    /// A fault-injection or chaos campaign could not run at all — the
    /// harness environment is broken (e.g. a fault-free reference solve
    /// failed), as opposed to an injected fault escaping detection.
    Campaign {
        /// Description of the environment failure.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadProblem { reason } => write!(f, "invalid problem: {reason}"),
            Error::Cache(e) => write!(f, "failed to compute the Riccati cache: {e}"),
            Error::Numeric(e) => write!(f, "numeric failure while solving: {e}"),
            Error::InvalidTrace { backend, report } => {
                write!(f, "invalid micro-op trace on {backend}:\n{report}")
            }
            Error::CorruptedWorkspace { what } => {
                write!(f, "solver workspace corrupted: {what}")
            }
            Error::AnalysisMismatch { what } => {
                write!(f, "static analysis mismatch: {what}")
            }
            Error::ShardFailed {
                item,
                attempts,
                payload,
            } => {
                write!(
                    f,
                    "sweep work item {item} failed after {attempts} attempt(s): {payload}"
                )
            }
            Error::Campaign { what } => {
                write!(f, "campaign harness failure: {what}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cache(e) | Error::Numeric(e) => Some(e),
            Error::BadProblem { .. }
            | Error::InvalidTrace { .. }
            | Error::CorruptedWorkspace { .. }
            | Error::AnalysisMismatch { .. }
            | Error::ShardFailed { .. }
            | Error::Campaign { .. } => None,
        }
    }
}

impl From<matlib::Error> for Error {
    fn from(e: matlib::Error) -> Self {
        Error::Numeric(e)
    }
}
