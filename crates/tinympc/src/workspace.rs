//! The solver's mutable state (the "TinyMPC workspace" of the paper's
//! Figure 11).

use matlib::{Scalar, Vector};

/// Per-solve mutable trajectories and ADMM variables.
///
/// All trajectories are stored as one vector per knot point, matching the
/// per-timestep access pattern of the iterative kernels. Dual and slack
/// variables persist across calls to `solve` for warm starting.
#[derive(Debug, Clone)]
pub struct TinyMpcWorkspace<T> {
    /// State trajectory `x[0..N]`.
    pub x: Vec<Vector<T>>,
    /// Input trajectory `u[0..N-1]`.
    pub u: Vec<Vector<T>>,
    /// Linear state cost terms `q[0..N]`.
    pub q: Vec<Vector<T>>,
    /// Linear input cost terms `r[0..N-1]`.
    pub r: Vec<Vector<T>>,
    /// Cost-to-go linear terms `p[0..N]`.
    pub p: Vec<Vector<T>>,
    /// Feed-forward terms `d[0..N-1]`.
    pub d: Vec<Vector<T>>,
    /// State slack trajectory `v[0..N]` (previous iterate).
    pub v: Vec<Vector<T>>,
    /// State slack trajectory `vnew[0..N]`.
    pub vnew: Vec<Vector<T>>,
    /// Input slack trajectory `z[0..N-1]` (previous iterate).
    pub z: Vec<Vector<T>>,
    /// Input slack trajectory `znew[0..N-1]`.
    pub znew: Vec<Vector<T>>,
    /// Input duals `y[0..N-1]`.
    pub y: Vec<Vector<T>>,
    /// State duals `g[0..N]`.
    pub g: Vec<Vector<T>>,
    /// Reference state trajectory `xref[0..N]`.
    pub xref: Vec<Vector<T>>,
}

impl<T: Scalar> TinyMpcWorkspace<T> {
    /// Creates a zeroed workspace for the given dimensions.
    pub fn new(nx: usize, nu: usize, horizon: usize) -> Self {
        let states = || (0..horizon).map(|_| Vector::zeros(nx)).collect::<Vec<_>>();
        let inputs = || {
            (0..horizon - 1)
                .map(|_| Vector::zeros(nu))
                .collect::<Vec<_>>()
        };
        TinyMpcWorkspace {
            x: states(),
            u: inputs(),
            q: states(),
            r: inputs(),
            p: states(),
            d: inputs(),
            v: states(),
            vnew: states(),
            z: inputs(),
            znew: inputs(),
            y: inputs(),
            g: states(),
            xref: states(),
        }
    }

    /// Resets the ADMM variables (duals and slacks) to zero — a cold
    /// start.
    pub fn cold_start(&mut self) {
        for v in self
            .y
            .iter_mut()
            .chain(self.g.iter_mut())
            .chain(self.v.iter_mut())
            .chain(self.vnew.iter_mut())
            .chain(self.z.iter_mut())
            .chain(self.znew.iter_mut())
        {
            for e in v.as_mut_slice() {
                *e = T::ZERO;
            }
        }
    }

    /// Whether every stored value is finite (divergence guard for tests).
    pub fn is_finite(&self) -> bool {
        self.x
            .iter()
            .chain(&self.u)
            .chain(&self.p)
            .chain(&self.y)
            .all(|v| v.is_finite())
    }
}
