//! HOT-PATH: arena-backed solver workspace (the "TinyMPC workspace" of
//! the paper's Figure 11).
//!
//! All thirteen logical trajectory fields live in **one contiguous
//! `Vec<T>` arena**, allocated once at construction and never resized.
//! Each field is a fixed region of the arena; per-knot access hands out
//! typed sub-slices. The per-iteration slide of the slack iterates
//! (`v ↔ vnew`, `z ↔ znew`) is a single boolean flip that exchanges
//! which storage region each *logical* field maps to — no data moves.
//!
//! The arena tail additionally holds the pinned initial state (the
//! memory-fault canary), the staged `u0` result of the last solve, and
//! four scratch strips used by the in-place ADMM passes, so a warm
//! solve performs **zero heap allocations** (the contract checked by
//! `solver_perf --smoke` and the allocation-regression test).
//!
//! This module is tagged `HOT-PATH`: CI forbids `.clone()` and
//! `Vector::zeros` inside it.

use matlib::Scalar;

/// One of the thirteen logical trajectory fields of the workspace.
///
/// State-shaped fields hold `horizon` knots of `nx` elements; input-
/// shaped fields hold `horizon − 1` knots of `nu` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WsField {
    /// State trajectory `x[0..N]`.
    X,
    /// Input trajectory `u[0..N-1]`.
    U,
    /// Linear state cost terms `q[0..N]`.
    Q,
    /// Linear input cost terms `r[0..N-1]`.
    R,
    /// Cost-to-go linear terms `p[0..N]`.
    P,
    /// Feed-forward terms `d[0..N-1]`.
    D,
    /// State slack trajectory `v[0..N]` (previous iterate).
    V,
    /// State slack trajectory `vnew[0..N]`.
    VNew,
    /// Input slack trajectory `z[0..N-1]` (previous iterate).
    Z,
    /// Input slack trajectory `znew[0..N-1]`.
    ZNew,
    /// Input duals `y[0..N-1]`.
    Y,
    /// State duals `g[0..N]`.
    G,
    /// Reference state trajectory `xref[0..N]`.
    XRef,
}

/// Number of state-shaped storage regions (`x q p v vnew g xref`).
const STATE_REGIONS: usize = 7;
/// Number of input-shaped storage regions (`u r d z znew y`).
const INPUT_REGIONS: usize = 6;

/// Per-solve mutable trajectories and ADMM variables, stored in one
/// contiguous arena.
///
/// Dual and slack variables persist across calls to `solve` for warm
/// starting. Logical fields are addressed through [`WsField`] and the
/// [`TinyMpcWorkspace::knot`]/[`TinyMpcWorkspace::knot_mut`] accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyMpcWorkspace<T> {
    nx: usize,
    nu: usize,
    horizon: usize,
    /// When set, the storage regions of `v`/`vnew` (and `z`/`znew`) are
    /// exchanged: the per-iteration iterate slide without moving data.
    flipped: bool,
    buf: Vec<T>,
}

/// Disjoint mutable views over every arena region, handed to the
/// in-place ADMM passes. Built by successive `split_at_mut` over the
/// single backing buffer, so the borrow checker sees one field per
/// region with no aliasing.
pub(crate) struct Views<'a, T> {
    pub x: &'a mut [T],
    pub q: &'a mut [T],
    pub p: &'a mut [T],
    pub v: &'a mut [T],
    pub vnew: &'a mut [T],
    pub g: &'a mut [T],
    pub xref: &'a mut [T],
    pub u: &'a mut [T],
    pub r: &'a mut [T],
    pub d: &'a mut [T],
    pub z: &'a mut [T],
    pub znew: &'a mut [T],
    pub y: &'a mut [T],
    /// Scratch strips for the in-place passes: two state-sized, two
    /// input-sized.
    pub sx_a: &'a mut [T],
    pub sx_b: &'a mut [T],
    pub su_a: &'a mut [T],
    pub su_b: &'a mut [T],
}

impl<T: Scalar> TinyMpcWorkspace<T> {
    /// Creates a zeroed workspace for the given dimensions: one arena
    /// allocation sized for every trajectory region plus the x0 pin,
    /// the `u0` staging strip and the pass scratch strips.
    pub fn new(nx: usize, nu: usize, horizon: usize) -> Self {
        let state = horizon * nx;
        let input = horizon.saturating_sub(1) * nu;
        let total = STATE_REGIONS * state + INPUT_REGIONS * input
            + nx        // x0 pin
            + nu        // u0 staging
            + 2 * nx    // sx_a, sx_b
            + 2 * nu; // su_a, su_b
        TinyMpcWorkspace {
            nx,
            nu,
            horizon,
            flipped: false,
            buf: vec![T::ZERO; total],
        }
    }

    /// State dimension `nx`.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Input dimension `nu`.
    pub fn nu(&self) -> usize {
        self.nu
    }

    /// Horizon length (knot points).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    fn state_len(&self) -> usize {
        self.horizon * self.nx
    }

    fn input_len(&self) -> usize {
        (self.horizon - 1) * self.nu
    }

    fn state_off(&self, region: usize) -> usize {
        region * self.state_len()
    }

    fn input_off(&self, region: usize) -> usize {
        STATE_REGIONS * self.state_len() + region * self.input_len()
    }

    fn tail_off(&self) -> usize {
        STATE_REGIONS * self.state_len() + INPUT_REGIONS * self.input_len()
    }

    /// `(arena offset, per-knot dimension, knot count)` of a logical
    /// field, resolving the `v/vnew` and `z/znew` region flip.
    fn field_info(&self, field: WsField) -> (usize, usize, usize) {
        let (n, nx, nu) = (self.horizon, self.nx, self.nu);
        let fl = self.flipped;
        match field {
            WsField::X => (self.state_off(0), nx, n),
            WsField::Q => (self.state_off(1), nx, n),
            WsField::P => (self.state_off(2), nx, n),
            WsField::V => (self.state_off(if fl { 4 } else { 3 }), nx, n),
            WsField::VNew => (self.state_off(if fl { 3 } else { 4 }), nx, n),
            WsField::G => (self.state_off(5), nx, n),
            WsField::XRef => (self.state_off(6), nx, n),
            WsField::U => (self.input_off(0), nu, n - 1),
            WsField::R => (self.input_off(1), nu, n - 1),
            WsField::D => (self.input_off(2), nu, n - 1),
            WsField::Z => (self.input_off(if fl { 4 } else { 3 }), nu, n - 1),
            WsField::ZNew => (self.input_off(if fl { 3 } else { 4 }), nu, n - 1),
            WsField::Y => (self.input_off(5), nu, n - 1),
        }
    }

    /// Number of knot points of a logical field (`horizon` for
    /// state-shaped fields, `horizon − 1` for input-shaped ones).
    pub fn knots(&self, field: WsField) -> usize {
        self.field_info(field).2
    }

    /// Per-knot element count of a logical field (`nx` or `nu`).
    pub fn knot_dim(&self, field: WsField) -> usize {
        self.field_info(field).1
    }

    /// Borrows knot `k` of a logical field.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range for the field.
    pub fn knot(&self, field: WsField, k: usize) -> &[T] {
        let (off, dim, knots) = self.field_info(field);
        assert!(k < knots, "knot {k} out of range for {field:?} ({knots})");
        &self.buf[off + k * dim..off + (k + 1) * dim]
    }

    /// Mutably borrows knot `k` of a logical field.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range for the field.
    pub fn knot_mut(&mut self, field: WsField, k: usize) -> &mut [T] {
        let (off, dim, knots) = self.field_info(field);
        assert!(k < knots, "knot {k} out of range for {field:?} ({knots})");
        &mut self.buf[off + k * dim..off + (k + 1) * dim]
    }

    /// The pinned shadow copy of the initial state: nothing in the ADMM
    /// iteration rewrites `x[0]`, so any divergence from this strip is
    /// a memory fault.
    pub fn x0_pinned(&self) -> &[T] {
        let off = self.tail_off();
        &self.buf[off..off + self.nx]
    }

    /// Copies `x0` into `x[0]` and the pin strip.
    pub(crate) fn set_x0(&mut self, x0: &[T]) {
        let (x_off, ..) = self.field_info(WsField::X);
        self.buf[x_off..x_off + self.nx].copy_from_slice(x0);
        let pin = self.tail_off();
        self.buf[pin..pin + self.nx].copy_from_slice(x0);
    }

    /// First control input staged by the last solve (the feasible first
    /// slack input `z[0]`). Zeros before the first solve completes.
    pub fn u0(&self) -> &[T] {
        let off = self.tail_off() + self.nx;
        &self.buf[off..off + self.nu]
    }

    /// Copies the logical `z[0]` into the `u0` staging strip (no heap
    /// traffic: a `copy_within` inside the arena).
    pub(crate) fn stage_u0(&mut self) {
        let (z_off, ..) = self.field_info(WsField::Z);
        let dst = self.tail_off() + self.nx;
        self.buf.copy_within(z_off..z_off + self.nu, dst);
    }

    /// Exchanges the storage regions of `v`/`vnew` and `z`/`znew` — the
    /// per-iteration iterate slide, at the cost of one boolean write.
    pub(crate) fn swap_slack_iterates(&mut self) {
        self.flipped = !self.flipped;
    }

    /// Resets the ADMM variables (duals and slacks) to zero — a cold
    /// start.
    pub fn cold_start(&mut self) {
        let state = self.state_len();
        let input = self.input_len();
        // Both storage regions of each slack pair plus the duals:
        // regions v(3), vnew(4), g(5) and z(3), znew(4), y(5).
        let s_lo = self.state_off(3);
        let i_lo = self.input_off(3);
        for e in &mut self.buf[s_lo..s_lo + 3 * state] {
            *e = T::ZERO;
        }
        for e in &mut self.buf[i_lo..i_lo + 3 * input] {
            *e = T::ZERO;
        }
    }

    /// Whether every iterate the divergence guard cares about (`x`,
    /// `u`, `p`, `y`) is finite.
    pub fn is_finite(&self) -> bool {
        [WsField::X, WsField::U, WsField::P, WsField::Y]
            .iter()
            .all(|&f| {
                let (off, dim, knots) = self.field_info(f);
                self.buf[off..off + dim * knots]
                    .iter()
                    .all(|v| v.is_finite())
            })
    }

    /// Splits the arena into disjoint mutable per-region views for the
    /// in-place ADMM passes.
    pub(crate) fn views(&mut self) -> Views<'_, T> {
        let state = self.state_len();
        let input = self.input_len();
        let (nx, nu) = (self.nx, self.nu);
        let flipped = self.flipped;
        let (x, rest) = self.buf.split_at_mut(state);
        let (q, rest) = rest.split_at_mut(state);
        let (p, rest) = rest.split_at_mut(state);
        let (v_a, rest) = rest.split_at_mut(state);
        let (v_b, rest) = rest.split_at_mut(state);
        let (g, rest) = rest.split_at_mut(state);
        let (xref, rest) = rest.split_at_mut(state);
        let (u, rest) = rest.split_at_mut(input);
        let (r, rest) = rest.split_at_mut(input);
        let (d, rest) = rest.split_at_mut(input);
        let (z_a, rest) = rest.split_at_mut(input);
        let (z_b, rest) = rest.split_at_mut(input);
        let (y, rest) = rest.split_at_mut(input);
        let (_x0pin, rest) = rest.split_at_mut(nx);
        let (_u0, rest) = rest.split_at_mut(nu);
        let (sx_a, rest) = rest.split_at_mut(nx);
        let (sx_b, rest) = rest.split_at_mut(nx);
        let (su_a, su_b) = rest.split_at_mut(nu);
        let (v, vnew) = if flipped { (v_b, v_a) } else { (v_a, v_b) };
        let (z, znew) = if flipped { (z_b, z_a) } else { (z_a, z_b) };
        Views {
            x,
            q,
            p,
            v,
            vnew,
            g,
            xref,
            u,
            r,
            d,
            z,
            znew,
            y,
            sx_a,
            sx_b,
            su_a,
            su_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_disjoint_and_knot_sized() {
        let mut ws = TinyMpcWorkspace::<f64>::new(3, 2, 5);
        let all = [
            WsField::X,
            WsField::U,
            WsField::Q,
            WsField::R,
            WsField::P,
            WsField::D,
            WsField::V,
            WsField::VNew,
            WsField::Z,
            WsField::ZNew,
            WsField::Y,
            WsField::G,
            WsField::XRef,
        ];
        // Stamp a unique value into every element through the accessors
        // and verify nothing aliases.
        let mut stamp = 1.0;
        for &f in &all {
            for k in 0..ws.knots(f) {
                for e in ws.knot_mut(f, k) {
                    *e = stamp;
                    stamp += 1.0;
                }
            }
        }
        let mut expect = 1.0;
        for &f in &all {
            assert_eq!(
                ws.knot_dim(f),
                if ws.knots(f) == 5 { 3 } else { 2 },
                "{f:?}"
            );
            for k in 0..ws.knots(f) {
                for &e in ws.knot(f, k) {
                    assert_eq!(e, expect, "{f:?}[{k}] aliased");
                    expect += 1.0;
                }
            }
        }
    }

    #[test]
    fn slack_flip_exchanges_logical_fields_without_moving_data() {
        let mut ws = TinyMpcWorkspace::<f32>::new(2, 1, 3);
        ws.knot_mut(WsField::V, 0)[0] = 1.0;
        ws.knot_mut(WsField::VNew, 0)[0] = 2.0;
        ws.knot_mut(WsField::Z, 0)[0] = 3.0;
        ws.knot_mut(WsField::ZNew, 0)[0] = 4.0;
        ws.swap_slack_iterates();
        assert_eq!(ws.knot(WsField::V, 0)[0], 2.0);
        assert_eq!(ws.knot(WsField::VNew, 0)[0], 1.0);
        assert_eq!(ws.knot(WsField::Z, 0)[0], 4.0);
        assert_eq!(ws.knot(WsField::ZNew, 0)[0], 3.0);
        ws.swap_slack_iterates();
        assert_eq!(ws.knot(WsField::V, 0)[0], 1.0);
        assert_eq!(ws.knot(WsField::Z, 0)[0], 3.0);
    }

    #[test]
    fn cold_start_zeroes_duals_and_both_slack_regions() {
        let mut ws = TinyMpcWorkspace::<f64>::new(2, 1, 3);
        for f in [
            WsField::V,
            WsField::VNew,
            WsField::G,
            WsField::Z,
            WsField::ZNew,
            WsField::Y,
        ] {
            ws.knot_mut(f, 0)[0] = 7.0;
        }
        ws.knot_mut(WsField::X, 0)[0] = 9.0;
        ws.cold_start();
        for f in [
            WsField::V,
            WsField::VNew,
            WsField::G,
            WsField::Z,
            WsField::ZNew,
            WsField::Y,
        ] {
            assert_eq!(ws.knot(f, 0)[0], 0.0, "{f:?} not reset");
        }
        // Trajectories survive a cold start (only ADMM variables reset).
        assert_eq!(ws.knot(WsField::X, 0)[0], 9.0);
    }

    #[test]
    fn x0_pin_and_u0_staging() {
        let mut ws = TinyMpcWorkspace::<f64>::new(2, 1, 3);
        ws.set_x0(&[1.5, -2.5]);
        assert_eq!(ws.knot(WsField::X, 0), &[1.5, -2.5]);
        assert_eq!(ws.x0_pinned(), &[1.5, -2.5]);
        ws.knot_mut(WsField::Z, 0)[0] = 0.25;
        ws.stage_u0();
        assert_eq!(ws.u0(), &[0.25]);
        // Staging follows the logical z after a flip.
        ws.swap_slack_iterates();
        ws.knot_mut(WsField::Z, 0)[0] = 0.75;
        ws.stage_u0();
        assert_eq!(ws.u0(), &[0.75]);
    }

    #[test]
    fn is_finite_watches_the_guarded_fields() {
        let mut ws = TinyMpcWorkspace::<f64>::new(2, 1, 3);
        assert!(ws.is_finite());
        ws.knot_mut(WsField::P, 1)[0] = f64::NAN;
        assert!(!ws.is_finite());
        ws.knot_mut(WsField::P, 1)[0] = 0.0;
        // q is not part of the divergence guard (legacy contract).
        ws.knot_mut(WsField::Q, 1)[0] = f64::INFINITY;
        assert!(ws.is_finite());
    }
}
