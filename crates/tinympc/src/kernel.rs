//! The kernel taxonomy of TinyMPC (Algorithms 1–3 of the paper).

use std::fmt;

/// Problem dimensions relevant to kernel cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemDims {
    /// State dimension (`nx`, 12 for the quadrotor).
    pub nx: usize,
    /// Input dimension (`nu`, 4 for the quadrotor).
    pub nu: usize,
    /// Horizon length (`N` knot points).
    pub horizon: usize,
}

impl ProblemDims {
    /// Total state-trajectory elements (`nx · N`).
    pub fn state_elems(&self) -> usize {
        self.nx * self.horizon
    }

    /// Total input-trajectory elements (`nu · (N−1)`).
    pub fn input_elems(&self) -> usize {
        self.nu * (self.horizon - 1)
    }
}

/// The three behavioural classes of TinyMPC kernels the paper identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Per-timestep operations with loop-carried data dependencies
    /// (Algorithm 1): small GEMVs chained through the horizon.
    Iterative,
    /// Whole-trajectory element-wise operations (Algorithm 2):
    /// saturation, dual updates, linear-cost refreshes.
    StripMining,
    /// Global maximum reductions over the trajectories (Algorithm 3):
    /// the ADMM convergence residuals.
    Reduction,
}

/// One of the fifteen TinyMPC kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum KernelId {
    // Algorithm 1 — iterative.
    ForwardPass1,
    ForwardPass2,
    BackwardPass1,
    BackwardPass2,
    UpdateLinearCost4,
    // Algorithm 2 — strip-mining.
    UpdateSlack1,
    UpdateSlack2,
    UpdateDual1,
    UpdateLinearCost1,
    UpdateLinearCost2,
    UpdateLinearCost3,
    // Algorithm 3 — reductions.
    PrimalResidualState,
    DualResidualState,
    PrimalResidualInput,
    DualResidualInput,
}

impl KernelId {
    /// All kernels in a stable order.
    pub const ALL: [KernelId; 15] = [
        KernelId::ForwardPass1,
        KernelId::ForwardPass2,
        KernelId::BackwardPass1,
        KernelId::BackwardPass2,
        KernelId::UpdateLinearCost4,
        KernelId::UpdateSlack1,
        KernelId::UpdateSlack2,
        KernelId::UpdateDual1,
        KernelId::UpdateLinearCost1,
        KernelId::UpdateLinearCost2,
        KernelId::UpdateLinearCost3,
        KernelId::PrimalResidualState,
        KernelId::DualResidualState,
        KernelId::PrimalResidualInput,
        KernelId::DualResidualInput,
    ];

    /// The behavioural class of this kernel.
    pub fn class(self) -> KernelClass {
        use KernelId::*;
        match self {
            ForwardPass1 | ForwardPass2 | BackwardPass1 | BackwardPass2 | UpdateLinearCost4 => {
                KernelClass::Iterative
            }
            UpdateSlack1 | UpdateSlack2 | UpdateDual1 | UpdateLinearCost1 | UpdateLinearCost2
            | UpdateLinearCost3 => KernelClass::StripMining,
            PrimalResidualState | DualResidualState | PrimalResidualInput | DualResidualInput => {
                KernelClass::Reduction
            }
        }
    }

    /// How many times this kernel runs per ADMM iteration for a horizon of
    /// `n` knot points. Iterative kernels run once per timestep;
    /// whole-trajectory kernels run once.
    pub fn invocations_per_iteration(self, horizon: usize) -> usize {
        match self.class() {
            KernelClass::Iterative => horizon - 1,
            KernelClass::StripMining | KernelClass::Reduction => 1,
        }
    }

    /// Floating-point operations of one invocation (functional count, FMA
    /// = 2), used for the paper's Figure 2 kernel breakdown.
    pub fn flops_per_invocation(self, d: &ProblemDims) -> u64 {
        let (nx, nu) = (d.nx as u64, d.nu as u64);
        let sx = d.state_elems() as u64;
        let su = d.input_elems() as u64;
        use KernelId::*;
        match self {
            // u = -Kinf x - d : nu×nx GEMV + nu sub.
            ForwardPass1 => 2 * nu * nx + nu,
            // x' = A x + B u : nx×nx + nx×nu GEMVs + nx add.
            ForwardPass2 => 2 * nx * nx + 2 * nx * nu + nx,
            // d = Quu_inv (Bᵀ p + r) : nu×nx GEMV + nu add + nu×nu GEMV.
            BackwardPass1 => 2 * nu * nx + nu + 2 * nu * nu,
            // p = q + AmBKt p − Kinfᵀ r : nx×nx + nx×nu GEMVs + 2nx adds.
            BackwardPass2 => 2 * nx * nx + 2 * nx * nu + 2 * nx,
            // p[N−1] = −P∞ xref − ρ(vnew − g) : nx×nx GEMV + 3nx.
            UpdateLinearCost4 => 2 * nx * nx + 3 * nx,
            // znew = clip(u + y) : add + 2 minmax per element.
            UpdateSlack1 => 3 * su,
            UpdateSlack2 => 3 * sx,
            // y += u − znew ; g += x − vnew.
            UpdateDual1 => 2 * su + 2 * sx,
            // r = −ρ (znew − y).
            UpdateLinearCost1 => 2 * su,
            // q = −(Xref ⊙ Qdiag).
            UpdateLinearCost2 => 2 * sx,
            // q −= ρ (vnew − g).
            UpdateLinearCost3 => 3 * sx,
            // max |a − b| : sub + abs + max per element.
            PrimalResidualState | DualResidualState => 3 * sx,
            PrimalResidualInput | DualResidualInput => 3 * su,
        }
    }
}

impl KernelId {
    /// Stable dense index of this kernel: its position in
    /// [`KernelId::ALL`] (the discriminant, since `ALL` lists the
    /// variants in declaration order).
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Fixed-size per-kernel cycle table: the allocation-free counterpart of
/// the `BTreeMap<KernelId, u64>` in [`crate::SolveResult`].
///
/// Tracks which kernels were *charged* separately from their cycle
/// counts so that a kernel charged at zero cycles (an ideal accelerator)
/// still appears in [`KernelCycles::to_map`], matching the legacy
/// accounting exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCycles {
    counts: [u64; 15],
    charged: u16,
}

impl KernelCycles {
    /// Empty table: no kernel charged.
    pub fn new() -> Self {
        KernelCycles {
            counts: [0; 15],
            charged: 0,
        }
    }

    /// Clears every count and charge mark.
    pub fn reset(&mut self) {
        *self = KernelCycles::new();
    }

    /// Records `cycles` against `kernel` (marking it charged even when
    /// `cycles` is zero).
    #[inline]
    pub fn add(&mut self, kernel: KernelId, cycles: u64) {
        let i = kernel.index();
        self.counts[i] += cycles;
        self.charged |= 1 << i;
    }

    /// Cycles accumulated against `kernel`.
    #[inline]
    pub fn get(&self, kernel: KernelId) -> u64 {
        self.counts[kernel.index()]
    }

    /// Sum over all kernels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Expands into the map form used by [`crate::SolveResult`]: one
    /// entry per *charged* kernel.
    pub fn to_map(&self) -> std::collections::BTreeMap<KernelId, u64> {
        KernelId::ALL
            .iter()
            .filter(|k| self.charged & (1 << k.index()) != 0)
            .map(|&k| (k, self.get(k)))
            .collect()
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelId::ForwardPass1 => "forward_pass_1",
            KernelId::ForwardPass2 => "forward_pass_2",
            KernelId::BackwardPass1 => "backward_pass_1",
            KernelId::BackwardPass2 => "backward_pass_2",
            KernelId::UpdateLinearCost4 => "update_linear_cost_4",
            KernelId::UpdateSlack1 => "update_slack_1",
            KernelId::UpdateSlack2 => "update_slack_2",
            KernelId::UpdateDual1 => "update_dual_1",
            KernelId::UpdateLinearCost1 => "update_linear_cost_1",
            KernelId::UpdateLinearCost2 => "update_linear_cost_2",
            KernelId::UpdateLinearCost3 => "update_linear_cost_3",
            KernelId::PrimalResidualState => "primal_residual_state",
            KernelId::DualResidualState => "dual_residual_state",
            KernelId::PrimalResidualInput => "primal_residual_input",
            KernelId::DualResidualInput => "dual_residual_input",
        };
        f.write_str(s)
    }
}

/// Static per-iteration work profile of a problem size — the raw material
/// of the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Problem dimensions profiled.
    pub dims: ProblemDims,
    /// `(kernel, invocations per ADMM iteration, flops per iteration)`.
    pub rows: Vec<(KernelId, usize, u64)>,
}

impl KernelProfile {
    /// Builds the profile for the given dimensions.
    pub fn new(dims: ProblemDims) -> Self {
        let rows = KernelId::ALL
            .iter()
            .map(|&k| {
                let inv = k.invocations_per_iteration(dims.horizon);
                (k, inv, inv as u64 * k.flops_per_invocation(&dims))
            })
            .collect();
        KernelProfile { dims, rows }
    }

    /// Total FLOPs per ADMM iteration.
    pub fn total_flops(&self) -> u64 {
        self.rows.iter().map(|(_, _, f)| f).sum()
    }

    /// FLOPs per iteration aggregated by kernel class.
    pub fn flops_by_class(&self) -> [(KernelClass, u64); 3] {
        let mut iter = 0;
        let mut strip = 0;
        let mut red = 0;
        for (k, _, f) in &self.rows {
            match k.class() {
                KernelClass::Iterative => iter += f,
                KernelClass::StripMining => strip += f,
                KernelClass::Reduction => red += f,
            }
        }
        [
            (KernelClass::Iterative, iter),
            (KernelClass::StripMining, strip),
            (KernelClass::Reduction, red),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_dims() -> ProblemDims {
        ProblemDims {
            nx: 12,
            nu: 4,
            horizon: 10,
        }
    }

    #[test]
    fn all_kernels_enumerated_once() {
        assert_eq!(KernelId::ALL.len(), 15);
        let mut sorted = KernelId::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn class_assignment_matches_paper() {
        assert_eq!(KernelId::ForwardPass1.class(), KernelClass::Iterative);
        assert_eq!(KernelId::UpdateSlack1.class(), KernelClass::StripMining);
        assert_eq!(
            KernelId::PrimalResidualState.class(),
            KernelClass::Reduction
        );
    }

    #[test]
    fn iterative_kernels_run_per_timestep() {
        assert_eq!(KernelId::ForwardPass2.invocations_per_iteration(10), 9);
        assert_eq!(KernelId::UpdateSlack1.invocations_per_iteration(10), 1);
    }

    #[test]
    fn profile_totals_are_consistent() {
        let p = KernelProfile::new(quad_dims());
        let by_class: u64 = p.flops_by_class().iter().map(|(_, f)| f).sum();
        assert_eq!(by_class, p.total_flops());
        assert!(p.total_flops() > 0);
        // Iterative work dominates for the quadrotor (12x12 GEMVs per
        // timestep vs ~100-element strip mines).
        let [it, st, rd] = p.flops_by_class();
        assert!(it.1 > st.1 && st.1 > rd.1, "{it:?} {st:?} {rd:?}");
    }

    #[test]
    fn kernel_index_matches_all_order() {
        for (i, k) in KernelId::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{k} out of order");
        }
    }

    #[test]
    fn kernel_cycles_tracks_zero_cycle_charges() {
        let mut t = KernelCycles::new();
        assert!(t.to_map().is_empty());
        t.add(KernelId::ForwardPass1, 10);
        t.add(KernelId::ForwardPass1, 5);
        t.add(KernelId::UpdateSlack1, 0);
        assert_eq!(t.get(KernelId::ForwardPass1), 15);
        assert_eq!(t.total(), 15);
        let map = t.to_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&KernelId::ForwardPass1], 15);
        assert_eq!(map[&KernelId::UpdateSlack1], 0);
        t.reset();
        assert!(t.to_map().is_empty());
    }

    #[test]
    fn dims_helpers() {
        let d = quad_dims();
        assert_eq!(d.state_elems(), 120);
        assert_eq!(d.input_elems(), 36);
    }
}
