//! The precomputed Riccati cache (TinyMPC's core memory optimization).

use crate::{Error, Result, TinyMpcProblem};
use matlib::{dare, DareOptions, Matrix, Scalar};

/// Cached infinite-horizon LQR quantities.
///
/// TinyMPC computes these once per problem (offline, or at solver
/// construction) and reuses them every ADMM iteration, so the online
/// iteration contains no factorizations — only matrix-vector products.
///
/// The Riccati recursion is run on the **ρ-augmented** costs
/// `Q + ρI`, `R + ρI`, because ADMM's augmented Lagrangian adds a
/// quadratic penalty to both primal blocks.
#[derive(Debug, Clone)]
pub struct TinyMpcCache<T> {
    /// Infinite-horizon feedback gain `K∞` (`nu × nx`).
    pub kinf: Matrix<T>,
    /// `K∞ᵀ` (`nx × nu`), cached to avoid transposing in the hot loop.
    pub kinf_t: Matrix<T>,
    /// Infinite-horizon cost-to-go `P∞` (`nx × nx`).
    pub pinf: Matrix<T>,
    /// `(R̃ + Bᵀ P∞ B)⁻¹` (`nu × nu`).
    pub quu_inv: Matrix<T>,
    /// `(A − B·K∞)ᵀ` (`nx × nx`) — the backward-pass propagation matrix.
    pub am_bk_t: Matrix<T>,
    /// `Bᵀ` (`nu × nx`), cached for the backward pass.
    pub b_t: Matrix<T>,
    /// Riccati iterations taken to converge.
    pub riccati_iterations: usize,
}

impl<T: Scalar> TinyMpcCache<T> {
    /// Computes the cache for a problem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Cache`] if the Riccati recursion fails (e.g. the
    /// augmented costs are not positive definite or the recursion
    /// diverges).
    pub fn compute(problem: &TinyMpcProblem<T>) -> Result<Self> {
        let nx = problem.a.rows();
        let nu = problem.b.cols();
        // ρ-augmented diagonal costs.
        let q_aug = Matrix::from_fn(nx, nx, |r, c| {
            if r == c {
                problem.q_diag[r] + problem.rho
            } else {
                T::ZERO
            }
        });
        let r_aug = Matrix::from_fn(nu, nu, |r, c| {
            if r == c {
                problem.r_diag[r] + problem.rho
            } else {
                T::ZERO
            }
        });
        let sol = dare(
            &problem.a,
            &problem.b,
            &q_aug,
            &r_aug,
            DareOptions::default(),
        )
        .map_err(Error::Cache)?;
        let bk = problem.b.matmul(&sol.k)?;
        let am_bk_t = problem.a.sub(&bk)?.transpose();
        Ok(TinyMpcCache {
            kinf_t: sol.k.transpose(),
            kinf: sol.k,
            pinf: sol.p,
            quu_inv: sol.quu_inv,
            am_bk_t,
            b_t: problem.b.transpose(),
            riccati_iterations: sol.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;

    #[test]
    fn cache_shapes_are_consistent() {
        let p = problems::quadrotor_hover::<f64>(10).unwrap();
        let c = TinyMpcCache::compute(&p).unwrap();
        assert_eq!(c.kinf.shape(), (4, 12));
        assert_eq!(c.kinf_t.shape(), (12, 4));
        assert_eq!(c.pinf.shape(), (12, 12));
        assert_eq!(c.quu_inv.shape(), (4, 4));
        assert_eq!(c.am_bk_t.shape(), (12, 12));
        assert!(c.riccati_iterations > 1);
    }

    #[test]
    fn closed_loop_with_kinf_is_stable() {
        let p = problems::quadrotor_hover::<f64>(10).unwrap();
        let c = TinyMpcCache::compute(&p).unwrap();
        let mut x = p.hover_offset_state(0.5);
        for _ in 0..500 {
            x = matlib::closed_loop_step(&p.a, &p.b, &c.kinf, &x).unwrap();
        }
        assert!(
            x.max_abs() < 1e-2,
            "closed loop diverged: {:?}",
            x.max_abs()
        );
    }

    #[test]
    fn pinf_is_symmetric_positive() {
        let p = problems::double_integrator::<f64>(15).unwrap();
        let c = TinyMpcCache::compute(&p).unwrap();
        assert!(c.pinf.max_abs_diff(&c.pinf.transpose()).unwrap() < 1e-6);
        for i in 0..c.pinf.rows() {
            assert!(c.pinf[(i, i)] > 0.0);
        }
    }
}
