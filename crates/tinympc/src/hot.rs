//! HOT-PATH: the dims-specialized, allocation-free ADMM inner loop.
//!
//! Every numeric pass of the solver lives here as a single generic
//! implementation over a [`DimsTag`]: the dynamic tag carries `nx`/`nu`
//! at runtime, while the const-generic tag lets the compiler
//! monomorphize the shipped problem shapes (quadrotor 12×4, rendezvous
//! 6×3, double integrator 2×1) with constant trip counts. Because both
//! tags drive the *same source*, specialized and dynamic paths are
//! bit-identical by construction — the differential tests assert this
//! at `U0_TOLERANCE = 0.0`.
//!
//! All passes operate on disjoint arena views
//! ([`crate::workspace::Views`]) through the in-place `matlib` kernels
//! (`gemv_into`, `add_into`, …): a warm [`AdmmSolver::solve_in_place`]
//! performs **zero heap allocations** (error paths excepted).
//!
//! This module is tagged `HOT-PATH`: CI forbids `.clone()` and
//! `Vector::zeros` inside it.

use crate::kernel::KernelCycles;
use crate::solver::SolveStatus;
use crate::workspace::{Views, WsField};
use crate::{
    AdmmSolver, KernelExecutor, KernelId, NullObserver, Result, SolveObserver, TerminationCause,
    TinyMpcCache, TinyMpcProblem,
};
use matlib::{Matrix, Scalar, Vector};

/// Which monomorphized fast path a solver dispatches its ADMM passes
/// through.
///
/// Selected automatically at construction from the problem dimensions
/// ([`SolverDims::for_dims`]); [`AdmmSolver::set_specialization`] can
/// force the [`SolverDims::Dynamic`] fallback (the differential tests
/// use this to compare both paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverDims {
    /// Const-generic path for `nx = 12, nu = 4` (quadrotor shapes).
    Quadrotor12x4,
    /// Const-generic path for `nx = 6, nu = 3` (rendezvous shapes).
    Rendezvous6x3,
    /// Const-generic path for `nx = 2, nu = 1` (double integrator).
    DoubleIntegrator2x1,
    /// Runtime-dims fallback for every other shape.
    Dynamic,
}

impl SolverDims {
    /// The specialization shipped for `(nx, nu)`, or
    /// [`SolverDims::Dynamic`] when no const path exists.
    pub fn for_dims(nx: usize, nu: usize) -> Self {
        match (nx, nu) {
            (12, 4) => SolverDims::Quadrotor12x4,
            (6, 3) => SolverDims::Rendezvous6x3,
            (2, 1) => SolverDims::DoubleIntegrator2x1,
            _ => SolverDims::Dynamic,
        }
    }

    /// The `(nx, nu)` shape a const-generic variant is valid for;
    /// `None` for [`SolverDims::Dynamic`].
    pub fn shape(self) -> Option<(usize, usize)> {
        match self {
            SolverDims::Quadrotor12x4 => Some((12, 4)),
            SolverDims::Rendezvous6x3 => Some((6, 3)),
            SolverDims::DoubleIntegrator2x1 => Some((2, 1)),
            SolverDims::Dynamic => None,
        }
    }
}

/// Compile-time-or-runtime problem shape handed to every pass.
pub(crate) trait DimsTag: Copy {
    /// State dimension.
    fn nx(self) -> usize;
    /// Input dimension.
    fn nu(self) -> usize;
}

/// Runtime dims: the generic fallback path.
#[derive(Clone, Copy)]
pub(crate) struct DynDims {
    pub nx: usize,
    pub nu: usize,
}

impl DimsTag for DynDims {
    #[inline(always)]
    fn nx(self) -> usize {
        self.nx
    }
    #[inline(always)]
    fn nu(self) -> usize {
        self.nu
    }
}

/// Const dims: accessors fold to constants, so the per-knot loops get
/// constant trip counts under monomorphization.
#[derive(Clone, Copy)]
pub(crate) struct ConstDims<const NX: usize, const NU: usize>;

impl<const NX: usize, const NU: usize> DimsTag for ConstDims<NX, NU> {
    #[inline(always)]
    fn nx(self) -> usize {
        NX
    }
    #[inline(always)]
    fn nu(self) -> usize {
        NU
    }
}

/// Expands one pass call per [`SolverDims`] variant so each arm
/// monomorphizes with its const shape.
macro_rules! dispatch {
    ($spec:expr, $dd:expr, $f:ident ( $($arg:expr),* $(,)? )) => {
        match $spec {
            SolverDims::Quadrotor12x4 => $f(ConstDims::<12, 4>, $($arg),*),
            SolverDims::Rendezvous6x3 => $f(ConstDims::<6, 3>, $($arg),*),
            SolverDims::DoubleIntegrator2x1 => $f(ConstDims::<2, 1>, $($arg),*),
            SolverDims::Dynamic => $f($dd, $($arg),*),
        }
    };
}

/// Backward Riccati sweep updating the linear terms only
/// (`BACKWARD_PASS_1` and `BACKWARD_PASS_2`).
fn backward<T: Scalar, D: DimsTag>(
    dims: D,
    horizon: usize,
    cache: &TinyMpcCache<T>,
    views: Views<'_, T>,
) -> Result<()> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        p,
        q,
        r,
        d,
        sx_a,
        sx_b,
        su_a,
        su_b,
        ..
    } = views;
    for i in (0..horizon - 1).rev() {
        let (p_lo, p_hi) = p.split_at_mut((i + 1) * nx);
        let p_i = &mut p_lo[i * nx..];
        let p_i1 = &p_hi[..nx];
        let r_i = &r[i * nu..(i + 1) * nu];
        // d[i] = Quu⁻¹ (Bᵀ p[i+1] + r[i])
        matlib::gemv_into(&cache.b_t, p_i1, su_a)?;
        matlib::add_into(&*su_a, r_i, su_b)?;
        matlib::gemv_into(&cache.quu_inv, &*su_b, &mut d[i * nu..(i + 1) * nu])?;
        // p[i] = q[i] + (A−BK)ᵀ p[i+1] − K∞ᵀ r[i]
        matlib::gemv_into(&cache.am_bk_t, p_i1, sx_a)?;
        matlib::gemv_into(&cache.kinf_t, r_i, sx_b)?;
        matlib::add_into(&q[i * nx..(i + 1) * nx], &*sx_a, p_i)?;
        matlib::sub_assign(p_i, &*sx_b)?;
    }
    Ok(())
}

/// Forward rollout (`FORWARD_PASS_1` and `FORWARD_PASS_2`).
fn forward<T: Scalar, D: DimsTag>(
    dims: D,
    horizon: usize,
    kinf: &Matrix<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    views: Views<'_, T>,
) -> Result<()> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        x,
        u,
        d,
        sx_a,
        sx_b,
        su_a,
        ..
    } = views;
    for i in 0..horizon - 1 {
        let (x_lo, x_hi) = x.split_at_mut((i + 1) * nx);
        let x_i = &x_lo[i * nx..];
        let x_i1 = &mut x_hi[..nx];
        let u_i = &mut u[i * nu..(i + 1) * nu];
        // u[i] = −K∞ x[i] − d[i]
        matlib::gemv_into(kinf, x_i, su_a)?;
        matlib::neg_into(&*su_a, u_i)?;
        matlib::sub_assign(u_i, &d[i * nu..(i + 1) * nu])?;
        // x[i+1] = A x[i] + B u[i]
        matlib::gemv_into(a, x_i, sx_a)?;
        matlib::gemv_into(b, &*u_i, sx_b)?;
        matlib::add_into(&*sx_a, &*sx_b, x_i1)?;
    }
    Ok(())
}

/// Box (and second-order-cone) projections (`UPDATE_SLACK_1` and
/// `UPDATE_SLACK_2`).
///
/// Cone constraints are applied after the box clip: the composite
/// projection onto box ∩ cone is approximated by the sequential
/// projections, whose fixed points satisfy both sets — the standard
/// Conic-TinyMPC treatment.
fn update_slack<T: Scalar, D: DimsTag>(
    dims: D,
    horizon: usize,
    problem: &TinyMpcProblem<T>,
    views: Views<'_, T>,
) -> Result<()> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        x,
        u,
        g,
        y,
        vnew,
        znew,
        ..
    } = views;
    for i in 0..horizon - 1 {
        let znew_i = &mut znew[i * nu..(i + 1) * nu];
        matlib::add_into(&u[i * nu..(i + 1) * nu], &y[i * nu..(i + 1) * nu], znew_i)?;
        matlib::clamp_in_place(znew_i, problem.u_min, problem.u_max);
        for cone in &problem.input_cones {
            cone.project_slice(znew_i);
        }
    }
    for i in 0..horizon {
        let vnew_i = &mut vnew[i * nx..(i + 1) * nx];
        matlib::add_into(&x[i * nx..(i + 1) * nx], &g[i * nx..(i + 1) * nx], vnew_i)?;
        matlib::clamp_in_place(vnew_i, problem.x_min, problem.x_max);
    }
    Ok(())
}

/// Dual ascent (`UPDATE_DUAL_1`).
fn update_dual<T: Scalar, D: DimsTag>(dims: D, horizon: usize, views: Views<'_, T>) -> Result<()> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        x,
        u,
        g,
        y,
        vnew,
        znew,
        ..
    } = views;
    for i in 0..horizon - 1 {
        let y_i = &mut y[i * nu..(i + 1) * nu];
        // y[i] = (y[i] + u[i]) − znew[i]
        matlib::add_assign(y_i, &u[i * nu..(i + 1) * nu])?;
        matlib::sub_assign(y_i, &znew[i * nu..(i + 1) * nu])?;
    }
    for i in 0..horizon {
        let g_i = &mut g[i * nx..(i + 1) * nx];
        matlib::add_assign(g_i, &x[i * nx..(i + 1) * nx])?;
        matlib::sub_assign(g_i, &vnew[i * nx..(i + 1) * nx])?;
    }
    Ok(())
}

/// Linear-cost refresh (`UPDATE_LINEAR_COST_1..4`).
fn update_linear_cost<T: Scalar, D: DimsTag>(
    dims: D,
    horizon: usize,
    rho: T,
    q_diag: &Vector<T>,
    pinf: &Matrix<T>,
    views: Views<'_, T>,
) -> Result<()> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        q,
        r,
        p,
        g,
        xref,
        y,
        vnew,
        znew,
        sx_a,
        ..
    } = views;
    // r[i] = −ρ (znew[i] − y[i])
    for i in 0..horizon - 1 {
        let r_i = &mut r[i * nu..(i + 1) * nu];
        matlib::sub_into(&znew[i * nu..(i + 1) * nu], &y[i * nu..(i + 1) * nu], r_i)?;
        matlib::scale_in_place(r_i, -rho);
    }
    // q[i] = −(xref[i] ⊙ Qdiag) − ρ (vnew[i] − g[i])
    let qd = q_diag.as_slice();
    for i in 0..horizon {
        let q_i = &mut q[i * nx..(i + 1) * nx];
        let xref_i = &xref[i * nx..(i + 1) * nx];
        let vnew_i = &vnew[i * nx..(i + 1) * nx];
        let g_i = &g[i * nx..(i + 1) * nx];
        for j in 0..nx {
            q_i[j] = -(xref_i[j] * qd[j]) - (vnew_i[j] - g_i[j]) * rho;
        }
    }
    // p[N−1] = −P∞ xref[N−1] − ρ (vnew[N−1] − g[N−1])
    let last = horizon - 1;
    matlib::gemv_into(pinf, &xref[last * nx..(last + 1) * nx], sx_a)?;
    let p_last = &mut p[last * nx..(last + 1) * nx];
    let vnew_l = &vnew[last * nx..(last + 1) * nx];
    let g_l = &g[last * nx..(last + 1) * nx];
    for j in 0..nx {
        p_last[j] = (-sx_a[j]) - (vnew_l[j] - g_l[j]) * rho;
    }
    Ok(())
}

/// Convergence residuals (`PRIMAL/DUAL_RESIDUAL_STATE/INPUT`), returned
/// as `(primal_state, dual_state·ρ, primal_input, dual_input·ρ)`.
fn residuals<T: Scalar, D: DimsTag>(
    dims: D,
    horizon: usize,
    rho: f64,
    views: Views<'_, T>,
) -> Result<(f64, f64, f64, f64)> {
    let (nx, nu) = (dims.nx(), dims.nu());
    let Views {
        x,
        u,
        v,
        vnew,
        z,
        znew,
        ..
    } = views;
    let mut prs: f64 = 0.0;
    let mut drs: f64 = 0.0;
    for i in 0..horizon {
        let vnew_i = &vnew[i * nx..(i + 1) * nx];
        prs = prs.max(matlib::max_abs_diff_slices(&x[i * nx..(i + 1) * nx], vnew_i)?.to_f64());
        drs = drs.max(matlib::max_abs_diff_slices(&v[i * nx..(i + 1) * nx], vnew_i)?.to_f64());
    }
    let mut pri: f64 = 0.0;
    let mut dri: f64 = 0.0;
    for i in 0..horizon - 1 {
        let znew_i = &znew[i * nu..(i + 1) * nu];
        pri = pri.max(matlib::max_abs_diff_slices(&u[i * nu..(i + 1) * nu], znew_i)?.to_f64());
        dri = dri.max(matlib::max_abs_diff_slices(&z[i * nu..(i + 1) * nu], znew_i)?.to_f64());
    }
    Ok((prs, drs * rho, pri, dri * rho))
}

impl<T: Scalar> AdmmSolver<T> {
    fn dyn_dims(&self) -> DynDims {
        DynDims {
            nx: self.workspace.nx(),
            nu: self.workspace.nu(),
        }
    }

    pub(crate) fn backward_pass(&mut self) -> Result<()> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let cache = &self.cache;
        let v = self.workspace.views();
        dispatch!(self.spec, dd, backward(n, cache, v))
    }

    pub(crate) fn forward_pass(&mut self) -> Result<()> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let kinf = &self.cache.kinf;
        let a = &self.problem.a;
        let b = &self.problem.b;
        let v = self.workspace.views();
        dispatch!(self.spec, dd, forward(n, kinf, a, b, v))
    }

    pub(crate) fn update_slack(&mut self) -> Result<()> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let problem = &self.problem;
        let v = self.workspace.views();
        dispatch!(self.spec, dd, update_slack(n, problem, v))
    }

    pub(crate) fn update_dual(&mut self) -> Result<()> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let v = self.workspace.views();
        dispatch!(self.spec, dd, update_dual(n, v))
    }

    pub(crate) fn update_linear_cost(&mut self) -> Result<()> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let rho = self.problem.rho;
        let q_diag = &self.problem.q_diag;
        let pinf = &self.cache.pinf;
        let v = self.workspace.views();
        dispatch!(self.spec, dd, update_linear_cost(n, rho, q_diag, pinf, v))
    }

    pub(crate) fn residuals(&mut self) -> Result<(f64, f64, f64, f64)> {
        let dd = self.dyn_dims();
        let n = self.workspace.horizon();
        let rho = self.problem.rho.to_f64();
        let v = self.workspace.views();
        dispatch!(self.spec, dd, residuals(n, rho, v))
    }

    /// Allocation-free solve: runs the ADMM iteration entirely inside
    /// the arena workspace and stages the result in place.
    ///
    /// The applied control is readable afterwards via
    /// [`AdmmSolver::u0`]; the per-kernel cycle table via
    /// [`AdmmSolver::last_kernel_cycles`]. The allocating
    /// [`AdmmSolver::solve`] wraps this entry point and packages both
    /// into a [`crate::SolveResult`].
    ///
    /// # Errors
    ///
    /// Same contract as [`AdmmSolver::solve`].
    pub fn solve_in_place(
        &mut self,
        x0: &[T],
        executor: &mut dyn KernelExecutor,
    ) -> Result<SolveStatus> {
        self.solve_in_place_observed(x0, executor, &mut NullObserver)
    }

    /// [`solve_in_place`](Self::solve_in_place) with an inter-iteration
    /// [`SolveObserver`] hook (fault injection, instrumentation).
    ///
    /// # Errors
    ///
    /// Same contract as [`AdmmSolver::solve`].
    pub fn solve_in_place_observed(
        &mut self,
        x0: &[T],
        executor: &mut dyn KernelExecutor,
        observer: &mut dyn SolveObserver<T>,
    ) -> Result<SolveStatus> {
        let dims = self.problem.dims();
        if x0.len() != dims.nx {
            return Err(crate::Error::BadProblem {
                reason: format!("x0 must have dimension {}, got {}", dims.nx, x0.len()),
            });
        }
        if x0.iter().any(|v| !v.is_finite()) {
            return Err(crate::Error::BadProblem {
                reason: "x0 contains non-finite entries".into(),
            });
        }
        let n = dims.horizon;
        let mut table = KernelCycles::new();
        let mut total: u64 = executor.setup_cycles(&dims)?;

        let charge = |k: KernelId,
                      times: usize,
                      table: &mut KernelCycles,
                      total: &mut u64,
                      executor: &mut dyn KernelExecutor|
         -> Result<()> {
            let c = executor.kernel_cycles(k, &dims)? * times as u64;
            table.add(k, c);
            *total += c;
            Ok(())
        };

        // x[0] and its pinned shadow copy: nothing in the ADMM iteration
        // rewrites x[0], so any change is a memory fault.
        self.workspace.set_x0(x0);
        let rho = self.problem.rho;

        // Initialize the linear cost terms from the reference before the
        // first backward pass.
        self.update_linear_cost()?;
        charge(
            KernelId::UpdateLinearCost1,
            1,
            &mut table,
            &mut total,
            executor,
        )?;
        charge(
            KernelId::UpdateLinearCost2,
            1,
            &mut table,
            &mut total,
            executor,
        )?;
        charge(
            KernelId::UpdateLinearCost3,
            1,
            &mut table,
            &mut total,
            executor,
        )?;
        charge(
            KernelId::UpdateLinearCost4,
            1,
            &mut table,
            &mut total,
            executor,
        )?;

        let mut converged = false;
        let mut termination = TerminationCause::MaxIterations;
        let mut iterations = 0;
        let mut residuals = (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        // Cost of the most recent full iteration, used to predict whether
        // the next one still fits in the cycle budget.
        let mut last_iter_cost: u64 = 0;

        for iter in 0..self.settings.max_iterations {
            if let Some(budget) = self.settings.cycle_budget {
                // The first iteration always runs so a best-so-far u0
                // exists; afterwards stop before a predicted overrun.
                if iter > 0 && total + last_iter_cost > budget {
                    termination = TerminationCause::Deadline;
                    break;
                }
            }
            let iter_start_cycles = total;
            iterations = iter + 1;

            // ---- Primal update: backward Riccati sweep, then forward
            // rollout (Algorithm 1).
            self.backward_pass()?;
            charge(
                KernelId::BackwardPass1,
                n - 1,
                &mut table,
                &mut total,
                executor,
            )?;
            charge(
                KernelId::BackwardPass2,
                n - 1,
                &mut table,
                &mut total,
                executor,
            )?;
            self.forward_pass()?;
            charge(
                KernelId::ForwardPass1,
                n - 1,
                &mut table,
                &mut total,
                executor,
            )?;
            charge(
                KernelId::ForwardPass2,
                n - 1,
                &mut table,
                &mut total,
                executor,
            )?;

            // ---- Slack update (Algorithm 2): project onto the boxes.
            self.update_slack()?;
            charge(KernelId::UpdateSlack1, 1, &mut table, &mut total, executor)?;
            charge(KernelId::UpdateSlack2, 1, &mut table, &mut total, executor)?;

            // ---- Dual ascent.
            self.update_dual()?;
            charge(KernelId::UpdateDual1, 1, &mut table, &mut total, executor)?;

            // ---- Refresh linear cost terms for the next primal update.
            self.update_linear_cost()?;
            charge(
                KernelId::UpdateLinearCost1,
                1,
                &mut table,
                &mut total,
                executor,
            )?;
            charge(
                KernelId::UpdateLinearCost2,
                1,
                &mut table,
                &mut total,
                executor,
            )?;
            charge(
                KernelId::UpdateLinearCost3,
                1,
                &mut table,
                &mut total,
                executor,
            )?;
            charge(
                KernelId::UpdateLinearCost4,
                1,
                &mut table,
                &mut total,
                executor,
            )?;

            // ---- Residuals (Algorithm 3) and termination.
            if iter % self.settings.check_interval == 0 {
                let (prs, drs, pri, dri) = self.residuals()?;
                charge(
                    KernelId::PrimalResidualState,
                    1,
                    &mut table,
                    &mut total,
                    executor,
                )?;
                charge(
                    KernelId::DualResidualState,
                    1,
                    &mut table,
                    &mut total,
                    executor,
                )?;
                charge(
                    KernelId::PrimalResidualInput,
                    1,
                    &mut table,
                    &mut total,
                    executor,
                )?;
                charge(
                    KernelId::DualResidualInput,
                    1,
                    &mut table,
                    &mut total,
                    executor,
                )?;
                residuals = (prs, drs, pri, dri);
                let tol = self.settings.tolerance;
                if prs < tol && drs < tol * rho.to_f64() && pri < tol && dri < tol * rho.to_f64() {
                    converged = true;
                }
                // Divergence: residuals of a healthy ADMM iteration shrink
                // towards tolerance; values this large (or NaN hiding in
                // the iterates — max-reductions skip NaN, so check the
                // workspace explicitly) mean the data is corrupt.
                let worst = prs.max(drs).max(pri).max(dri);
                if !worst.is_finite()
                    || worst > self.settings.divergence_threshold
                    || !self.workspace.is_finite()
                {
                    termination = TerminationCause::Diverged;
                    break;
                }
            }

            // Slide the slack iterates: exchange which storage regions
            // the logical v/vnew and z/znew map to (no data moves).
            self.workspace.swap_slack_iterates();

            observer.after_iteration(iterations, &mut self.cache, &mut self.workspace);
            if self.workspace.knot(WsField::X, 0) != self.workspace.x0_pinned() {
                return Err(crate::Error::CorruptedWorkspace {
                    what: "pinned initial state x[0] changed mid-solve".into(),
                });
            }

            last_iter_cost = total - iter_start_cycles;

            if converged {
                termination = TerminationCause::Converged;
                break;
            }
        }

        // The applied control is the (feasible) first slack input,
        // staged inside the arena.
        self.workspace.stage_u0();
        self.last_kernel_cycles = table;
        Ok(SolveStatus {
            converged,
            termination,
            iterations,
            residuals,
            total_cycles: total,
        })
    }
}
