//! Second-order-cone input constraints (Conic-TinyMPC extension).
//!
//! A [`SocConstraint`] couples a set of *lateral* input components to an
//! *axis* component through a shifted second-order cone:
//!
//! ```text
//! ‖u_lateral‖₂ ≤ μ · (u_axis + offset)
//! ```
//!
//! The canonical use is rocket soft-landing: with inputs expressed as
//! thrust deltas about the hover trim, `offset` is the trim thrust and
//! `μ` the tangent of the maximum gimbal/glide-slope angle, so the
//! *physical* thrust vector stays inside the admissible cone.
//!
//! The constraint is enforced inside the ADMM slack update by Euclidean
//! projection onto the cone — the slack step stays a cheap element-wise
//! pass (strip-mining plus one small reduction), exactly the kernel
//! class the paper's `UPDATE_SLACK` timing already models, so no new
//! [`crate::KernelId`] is needed.

use crate::{Error, Result};
use matlib::{Scalar, Vector};

/// A shifted second-order cone over a subset of the input vector:
/// `‖u[lateral]‖ ≤ mu · (u[axis] + offset)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConstraint<T> {
    /// Index of the axis component (the cone's symmetry axis).
    pub axis: usize,
    /// Indices of the lateral components (the cone's cross-section).
    pub lateral: Vec<usize>,
    /// Cone half-angle tangent; must be positive.
    pub mu: T,
    /// Shift added to the axis component before the cone test (e.g. a
    /// hover-trim thrust when inputs are deltas about trim).
    pub offset: T,
}

impl<T: Scalar> SocConstraint<T> {
    /// Validates the constraint against an input dimension `nu`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadProblem`] for an out-of-range or duplicated
    /// index, an empty lateral set, a lateral set containing the axis,
    /// or a non-positive `mu`.
    pub fn validate(&self, nu: usize) -> Result<()> {
        let bad = |reason: String| Err(Error::BadProblem { reason });
        if self.axis >= nu {
            return bad(format!("cone axis {} out of range (nu = {nu})", self.axis));
        }
        if self.lateral.is_empty() {
            return bad("cone has an empty lateral set".to_string());
        }
        for (i, &l) in self.lateral.iter().enumerate() {
            if l >= nu {
                return bad(format!("cone lateral index {l} out of range (nu = {nu})"));
            }
            if l == self.axis {
                return bad(format!("cone lateral index {l} equals the axis"));
            }
            if self.lateral[..i].contains(&l) {
                return bad(format!("cone lateral index {l} is duplicated"));
            }
        }
        if self.mu <= T::ZERO {
            return bad("cone mu must be positive".to_string());
        }
        Ok(())
    }

    /// Projects `u` onto the cone in place (Euclidean projection).
    ///
    /// With `v = u[lateral]` and `s = u[axis] + offset`, the projection
    /// of `(v, s)` onto `{(v, s) : ‖v‖ ≤ μs}` is the standard
    /// three-case formula:
    ///
    /// * `‖v‖ ≤ μs` — already inside, unchanged;
    /// * `μ‖v‖ ≤ −s` — inside the polar cone, project to the apex
    ///   `(0, 0)`;
    /// * otherwise — project onto the boundary:
    ///   `s* = (μ‖v‖ + s) / (μ² + 1)`, `v* = μ s* · v / ‖v‖`.
    ///
    /// The computation runs in the scalar type `T` (f32 on the modelled
    /// hardware), so every back-end produces bit-identical slacks.
    pub fn project(&self, u: &mut Vector<T>) {
        self.project_slice(u.as_mut_slice());
    }

    /// [`project`](Self::project) on a raw slice — the arena hot path
    /// (no `Vector` wrapper, no allocation).
    pub fn project_slice(&self, u: &mut [T]) {
        let mu = self.mu;
        let s = u[self.axis] + self.offset;
        let norm_sq = self
            .lateral
            .iter()
            .fold(T::ZERO, |acc, &l| acc + u[l] * u[l]);
        let norm = norm_sq.sqrt();
        if norm <= mu * s {
            return; // interior (or boundary): already feasible
        }
        if mu * norm <= -s {
            // Polar cone: nearest feasible point is the apex.
            for &l in &self.lateral {
                u[l] = T::ZERO;
            }
            u[self.axis] = -self.offset;
            return;
        }
        // Boundary projection.
        let s_star = (mu * norm + s) / (mu * mu + T::ONE);
        let scale = mu * s_star / norm;
        for &l in &self.lateral {
            u[l] *= scale;
        }
        u[self.axis] = s_star - self.offset;
    }

    /// Signed feasibility margin `mu·(u[axis]+offset) − ‖u[lateral]‖`
    /// (non-negative iff `u` satisfies the cone), in f64 for tests and
    /// reporting.
    pub fn margin(&self, u: &[T]) -> f64 {
        let s = (u[self.axis] + self.offset).to_f64();
        let norm = self
            .lateral
            .iter()
            .map(|&l| u[l].to_f64().powi(2))
            .sum::<f64>()
            .sqrt();
        self.mu.to_f64() * s - norm
    }

    /// Stable serialization for cache keys (every behavior-affecting
    /// field spelled out).
    pub fn cache_id(&self) -> String {
        let lateral: Vec<String> = self.lateral.iter().map(|l| l.to_string()).collect();
        format!(
            "soc(axis={},lateral=[{}],mu={:?},offset={:?})",
            self.axis,
            lateral.join(","),
            self.mu.to_f64(),
            self.offset.to_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cone(mu: f64, offset: f64) -> SocConstraint<f64> {
        SocConstraint {
            axis: 2,
            lateral: vec![0, 1],
            mu,
            offset,
        }
    }

    #[test]
    fn interior_point_is_unchanged() {
        // ‖(0.1, 0.1)‖ ≈ 0.141 ≤ 0.5·1.0: strictly inside.
        let c = cone(0.5, 0.0);
        let mut u = Vector::from_slice(&[0.1, 0.1, 1.0]);
        let before = u.clone();
        c.project(&mut u);
        assert_eq!(u, before);
    }

    #[test]
    fn boundary_point_is_a_fixed_point() {
        // ‖(0.6, 0.8)‖ = 1.0 = 1.0·1.0: exactly on the boundary.
        let c = cone(1.0, 0.0);
        let mut u = Vector::from_slice(&[0.6, 0.8, 1.0]);
        let before = u.clone();
        c.project(&mut u);
        for i in 0..3 {
            assert!((u[i] - before[i]).abs() < 1e-12, "component {i} moved");
        }
    }

    #[test]
    fn reflected_point_projects_onto_the_boundary() {
        // Hand-computed: μ=1, v=(3,4) so ‖v‖=5, s=0.
        // s* = (1·5 + 0)/(1+1) = 2.5; v* = 1·2.5·(3,4)/5 = (1.5, 2.0).
        let c = cone(1.0, 0.0);
        let mut u = Vector::from_slice(&[3.0, 4.0, 0.0]);
        c.project(&mut u);
        assert!((u[0] - 1.5).abs() < 1e-12, "{:?}", u);
        assert!((u[1] - 2.0).abs() < 1e-12, "{:?}", u);
        assert!((u[2] - 2.5).abs() < 1e-12, "{:?}", u);
        // The result lies exactly on the boundary.
        assert!(c.margin(u.as_slice()).abs() < 1e-12);
    }

    #[test]
    fn polar_cone_point_projects_to_the_apex() {
        // μ=1, v=(1,0), s=-2: μ‖v‖=1 ≤ 2=−s, so the nearest feasible
        // point is the apex (0,0,0).
        let c = cone(1.0, 0.0);
        let mut u = Vector::from_slice(&[1.0, 0.0, -2.0]);
        c.project(&mut u);
        assert_eq!(u.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn offset_shifts_the_apex() {
        // With offset=1 the apex in delta coordinates sits at axis=−1.
        let c = cone(1.0, 1.0);
        let mut u = Vector::from_slice(&[0.5, 0.0, -3.0]);
        // s = −3+1 = −2, μ‖v‖ = 0.5 ≤ 2: polar cone.
        c.project(&mut u);
        assert_eq!(u.as_slice(), &[0.0, 0.0, -1.0]);

        // And an interior point in shifted coordinates stays put:
        // s = 0+1 = 1 ≥ ‖(0.3,0.4)‖ = 0.5.
        let mut v = Vector::from_slice(&[0.3, 0.4, 0.0]);
        let before = v.clone();
        c.project(&mut v);
        assert_eq!(v, before);
    }

    #[test]
    fn narrow_cone_hand_computed_projection() {
        // μ=0.5, v=(4,0) so ‖v‖=4, s=1: outside (4 > 0.5), not polar
        // (0.5·4=2 > −1). s* = (0.5·4+1)/(0.25+1) = 3/1.25 = 2.4;
        // v* = 0.5·2.4·(4,0)/4 = (1.2, 0).
        let c = cone(0.5, 0.0);
        let mut u = Vector::from_slice(&[4.0, 0.0, 1.0]);
        c.project(&mut u);
        assert!((u[0] - 1.2).abs() < 1e-12, "{:?}", u);
        assert!(u[1].abs() < 1e-12);
        assert!((u[2] - 2.4).abs() < 1e-12, "{:?}", u);
    }

    #[test]
    fn projection_is_idempotent_and_feasible() {
        let c = cone(0.7, 0.3);
        for (a, b, s) in [
            (3.0, -4.0, 0.2),
            (0.0, 0.0, -5.0),
            (1e-3, 0.0, 1.0),
            (-2.0, 2.0, -0.5),
        ] {
            let mut u = Vector::from_slice(&[a, b, s]);
            c.project(&mut u);
            assert!(
                c.margin(u.as_slice()) >= -1e-9,
                "infeasible after projection: {u:?}"
            );
            let once = u.clone();
            c.project(&mut u);
            for i in 0..3 {
                assert!((u[i] - once[i]).abs() < 1e-12, "not idempotent at {i}");
            }
        }
    }

    #[test]
    fn validation_rejects_malformed_cones() {
        let ok = cone(1.0, 0.0);
        assert!(ok.validate(3).is_ok());
        assert!(ok.validate(2).is_err(), "axis out of range");
        let mut empty = ok.clone();
        empty.lateral.clear();
        assert!(empty.validate(3).is_err());
        let mut dup = ok.clone();
        dup.lateral = vec![0, 0];
        assert!(dup.validate(3).is_err());
        let mut self_ref = ok.clone();
        self_ref.lateral = vec![2];
        assert!(self_ref.validate(3).is_err(), "lateral equals axis");
        let mut flat = ok.clone();
        flat.mu = 0.0;
        assert!(flat.validate(3).is_err());
    }

    #[test]
    fn cache_id_spells_out_every_field() {
        let id = cone(0.5, 0.25).cache_id();
        assert_eq!(id, "soc(axis=2,lateral=[0,1],mu=0.5,offset=0.25)");
    }
}
