//! MPC problem definition.

use crate::{Error, ProblemDims, Result, SocConstraint};
use matlib::{Matrix, Scalar, Vector};

/// A box-constrained linear MPC problem:
///
/// minimize   Σ (xᵢ−xrefᵢ)ᵀQ(xᵢ−xrefᵢ) + uᵢᵀRuᵢ
/// subject to xᵢ₊₁ = A xᵢ + B uᵢ,  u_min ≤ uᵢ ≤ u_max,  x_min ≤ xᵢ ≤ x_max,
/// optionally with second-order-cone input constraints
/// ([`SocConstraint`], the Conic-TinyMPC extension).
///
/// `Q` and `R` are diagonal (stored as vectors), matching TinyMPC.
#[derive(Debug, Clone)]
pub struct TinyMpcProblem<T> {
    /// Discrete dynamics matrix (`nx × nx`).
    pub a: Matrix<T>,
    /// Discrete input matrix (`nx × nu`).
    pub b: Matrix<T>,
    /// Diagonal of the state cost (`nx`).
    pub q_diag: Vector<T>,
    /// Diagonal of the input cost (`nu`).
    pub r_diag: Vector<T>,
    /// Horizon length (knot points).
    pub horizon: usize,
    /// ADMM penalty parameter.
    pub rho: T,
    /// Input box constraints.
    pub u_min: T,
    /// Upper input bound.
    pub u_max: T,
    /// State box constraints.
    pub x_min: T,
    /// Upper state bound.
    pub x_max: T,
    /// Second-order-cone input constraints, enforced in the slack
    /// projection after the box clip. Empty for the classic
    /// box-constrained problems.
    pub input_cones: Vec<SocConstraint<T>>,
}

impl<T: Scalar> TinyMpcProblem<T> {
    /// Validates the problem shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadProblem`] for inconsistent dimensions, a
    /// horizon below 2, or inverted bounds.
    pub fn validate(&self) -> Result<()> {
        let nx = self.a.rows();
        let nu = self.b.cols();
        let bad = |reason: String| Err(Error::BadProblem { reason });
        if self.a.cols() != nx {
            return bad(format!("A must be square, got {:?}", self.a.shape()));
        }
        if self.b.rows() != nx {
            return bad(format!("B must have {nx} rows, got {:?}", self.b.shape()));
        }
        if self.q_diag.len() != nx {
            return bad(format!(
                "Q diagonal must have {nx} entries, got {}",
                self.q_diag.len()
            ));
        }
        if self.r_diag.len() != nu {
            return bad(format!(
                "R diagonal must have {nu} entries, got {}",
                self.r_diag.len()
            ));
        }
        if self.horizon < 2 {
            return bad(format!("horizon must be at least 2, got {}", self.horizon));
        }
        if self.u_min > self.u_max || self.x_min > self.x_max {
            return bad("bounds are inverted".to_string());
        }
        if self.rho <= T::ZERO {
            return bad("rho must be positive".to_string());
        }
        for cone in &self.input_cones {
            cone.validate(nu)?;
        }
        Ok(())
    }

    /// Problem dimensions.
    pub fn dims(&self) -> ProblemDims {
        ProblemDims {
            nx: self.a.rows(),
            nu: self.b.cols(),
            horizon: self.horizon,
        }
    }

    /// A convenience initial state: hover with the first position
    /// coordinate offset by `offset` (used by examples and tests).
    pub fn hover_offset_state(&self, offset: f64) -> Vector<T> {
        let mut x = Vector::zeros(self.a.rows());
        x[0] = T::from_f64(offset);
        x
    }
}
