//! # tinympc — model-predictive control for resource-constrained robots
//!
//! A from-scratch Rust implementation of **TinyMPC** (Nguyen et al., 2024),
//! the target workload of the paper's design-space exploration. TinyMPC
//! solves a convex, box-constrained linear MPC problem with the alternating
//! direction method of multipliers (ADMM), alternating between primal,
//! slack and dual updates until the residuals converge.
//!
//! The key memory/compute optimization is the **infinite-horizon Riccati
//! cache**: instead of a full horizon of time-varying LQR gains, the solver
//! caches only `K∞`, `P∞`, `(R+BᵀP∞B)⁻¹` and `(A−BK∞)ᵀ` — computed once
//! per problem — so the online iteration consists purely of small
//! matrix-vector products, strip-mined element-wise vector operations, and
//! global max reductions (Algorithms 1–3 of the paper; see [`KernelId`]).
//!
//! ## Architecture-aware accounting
//!
//! The solver is generic over a [`KernelExecutor`]: a timing oracle that
//! prices each kernel invocation on some hardware back-end. The functional
//! math is always computed with [`matlib`] (so every back-end produces the
//! same trajectory up to float rounding); executors for the scalar cores,
//! Saturn and Gemmini live in the `soc-dse` crate.
//!
//! ## Quickstart
//!
//! ```
//! use tinympc::{AdmmSolver, NullExecutor, problems, SolverSettings};
//!
//! # fn main() -> Result<(), tinympc::Error> {
//! let problem = problems::quadrotor_hover::<f64>(10)?;
//! let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;
//! let x0 = solver.problem().hover_offset_state(0.2);
//! let status = solver.solve_in_place(x0.as_slice(), &mut NullExecutor)?;
//! assert!(status.converged);
//! assert_eq!(solver.u0().len(), 4); // applied control, staged in the arena
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cone;
mod error;
mod executor;
mod hot;
mod kernel;
mod problem;
pub mod problems;
mod solver;
mod workspace;

pub use cache::TinyMpcCache;
pub use cone::SocConstraint;
pub use error::Error;
pub use executor::{KernelExecutor, NullExecutor};
pub use hot::SolverDims;
pub use kernel::{KernelClass, KernelCycles, KernelId, KernelProfile, ProblemDims};
pub use problem::TinyMpcProblem;
pub use solver::{
    AdmmSolver, NullObserver, SolveObserver, SolveResult, SolveStatus, SolverSettings,
    TerminationCause,
};
pub use workspace::{TinyMpcWorkspace, WsField};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
