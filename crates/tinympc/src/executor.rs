//! The timing-oracle interface between the solver and hardware back-ends.

use crate::{KernelId, ProblemDims, Result};

/// Prices TinyMPC kernel invocations on some hardware back-end.
///
/// The solver computes functionally with `matlib` and calls the executor
/// once per kernel invocation to accumulate simulated cycles. Executors
/// for the scalar CPUs, Saturn and Gemmini live in the `soc-dse` crate;
/// they internally generate the kernel's micro-op trace for their software
/// mapping, replay it through the back-end's pipeline model, and memoize
/// the result per `(kernel, dims)`.
///
/// Both pricing methods are fallible: an executor that verifies its own
/// micro-op traces (or simulates faulty hardware) reports an unusable
/// trace as [`crate::Error::InvalidTrace`] instead of silently charging
/// cycles for a stream the hardware could not execute.
pub trait KernelExecutor {
    /// Human-readable back-end name for reports (e.g.
    /// `"Saturn V512D256 / Rocket (fused, LMUL=2)"`).
    fn name(&self) -> String;

    /// Simulated cycles of one invocation of `kernel` at the given problem
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidTrace`] if the kernel's generated
    /// micro-op trace fails verification.
    fn kernel_cycles(&mut self, kernel: KernelId, dims: &ProblemDims) -> Result<u64>;

    /// One-time per-solve setup cost (e.g. Gemmini's workspace preload
    /// into the scratchpad). Defaults to zero.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidTrace`] if the setup trace fails
    /// verification.
    fn setup_cycles(&mut self, dims: &ProblemDims) -> Result<u64> {
        let _ = dims;
        Ok(0)
    }
}

/// An executor that charges nothing — used for purely functional solves
/// (reference trajectories, correctness tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullExecutor;

impl KernelExecutor for NullExecutor {
    fn name(&self) -> String {
        "reference (no timing)".to_string()
    }

    fn kernel_cycles(&mut self, _kernel: KernelId, _dims: &ProblemDims) -> Result<u64> {
        Ok(0)
    }
}
