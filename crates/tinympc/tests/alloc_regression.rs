//! Allocation regression guard for the solver hot path.
//!
//! The arena-workspace contract says a *warm* [`AdmmSolver::solve_in_place`]
//! performs **zero** heap allocations: every iterate, scratch vector and
//! the staged `u0` live inside the workspace arena, and the per-kernel
//! cycle table is a fixed-size array. This test installs a counting
//! global allocator and fails on the first allocation (or reallocation)
//! that sneaks back into the warm loop.
//!
//! The lib crate itself is `#![forbid(unsafe_code)]`; the counting
//! allocator needs `unsafe impl GlobalAlloc`, which is why this guard
//! lives in an integration test (a separate crate).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tinympc::{problems, AdmmSolver, NullExecutor, SolverDims, SolverSettings};

/// Counts every allocation and reallocation routed through the global
/// allocator. Frees are not counted — the contract is "no hidden
/// allocation", and a free without a matching alloc is impossible.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

fn assert_warm_solve_is_allocation_free<const FORCE_DYNAMIC: bool>(name: &str) {
    let problem = match name {
        "quadrotor_hover" => problems::quadrotor_hover::<f32>(10).unwrap(),
        "double_integrator" => problems::double_integrator::<f32>(12).unwrap(),
        "random_stable_5x2" => problems::random_stable::<f32>(5, 2, 8, 7).unwrap(),
        other => panic!("unknown problem {other}"),
    };
    let nx = problem.dims().nx;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    if FORCE_DYNAMIC {
        solver.set_specialization(SolverDims::Dynamic).unwrap();
    }
    let x0 = vec![0.05f32; nx];

    // Two warm-up solves: the first touches every arena region, the
    // second settles the warm-start iterates.
    solver.solve_in_place(&x0, &mut NullExecutor).unwrap();
    solver.solve_in_place(&x0, &mut NullExecutor).unwrap();

    let (allocs, status) =
        allocations_during(|| solver.solve_in_place(&x0, &mut NullExecutor).unwrap());
    assert!(status.iterations >= 1, "{name}: solve did not iterate");
    assert_eq!(
        allocs, 0,
        "{name} (dynamic={FORCE_DYNAMIC}): warm solve_in_place allocated {allocs} times"
    );
    assert!(
        solver.u0().iter().all(|v| v.is_finite()),
        "{name}: non-finite u0"
    );
}

#[test]
fn warm_solve_in_place_performs_zero_heap_allocations() {
    // Const-specialized paths.
    assert_warm_solve_is_allocation_free::<false>("quadrotor_hover");
    assert_warm_solve_is_allocation_free::<false>("double_integrator");
    // Dynamic fallback: a shape with no const path, and a const shape
    // with the fallback forced.
    assert_warm_solve_is_allocation_free::<false>("random_stable_5x2");
    assert_warm_solve_is_allocation_free::<true>("quadrotor_hover");
}

#[test]
fn warm_solve_with_reference_tracking_stays_allocation_free() {
    let problem = problems::quadrotor_hover::<f32>(10).unwrap();
    let nx = problem.dims().nx;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
    let xref: Vec<matlib::Vector<f32>> = (0..10)
        .map(|_| matlib::Vector::from_fn(nx, |i| if i == 2 { 0.3 } else { 0.0 }))
        .collect();
    solver.set_reference(&xref).unwrap();
    let x0 = vec![0.0f32; nx];
    solver.solve_in_place(&x0, &mut NullExecutor).unwrap();

    // set_reference copies into the arena; re-targeting between warm
    // solves must stay allocation-free too.
    let (allocs, _) = allocations_during(|| {
        solver.set_reference(&xref).unwrap();
        solver.solve_in_place(&x0, &mut NullExecutor).unwrap()
    });
    assert_eq!(allocs, 0, "warm tracking solve allocated {allocs} times");
}
