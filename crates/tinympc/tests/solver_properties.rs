//! Property-based tests of the ADMM solver over randomized problems.
//!
//! Cases come from a deterministic in-file PRNG so every failure
//! reproduces exactly from the printed seed.

use matlib::Vector;
use tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

/// SplitMix64 — deterministic, dependency-free case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// Random stable problems solve without numerical blowup, the applied
/// input respects the box constraints, and the workspace stays finite.
#[test]
fn random_problems_stay_feasible() {
    for case in 0..32u64 {
        let mut rng = Rng(case);
        let nx = rng.below(2, 10) as usize;
        let nu = rng.below(1, 4) as usize;
        let horizon = rng.below(3, 15) as usize;
        let seed = rng.below(0, 500);
        let x_scale = rng.f64(0.1, 10.0);
        let problem = problems::random_stable::<f64>(nx, nu, horizon, seed).unwrap();
        let (u_min, u_max) = (problem.u_min, problem.u_max);
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = Vector::from_fn(nx, |i| x_scale * if i % 2 == 0 { 1.0 } else { -0.5 });
        solver
            .solve_in_place(x0.as_slice(), &mut NullExecutor)
            .unwrap();
        assert!(solver.workspace().is_finite());
        for &u in solver.u0() {
            assert!(
                u >= u_min - 1e-9 && u <= u_max + 1e-9,
                "case {case}: u0 {u} violates bounds"
            );
        }
    }
}

/// Scaling the tolerance down never increases the final residuals.
#[test]
fn tighter_tolerance_tightens_residuals() {
    for seed in 0..32u64 {
        let mk = |tol: f64| {
            let problem = problems::random_stable::<f64>(6, 2, 10, seed).unwrap();
            let settings = SolverSettings {
                max_iterations: 300,
                tolerance: tol,
                ..Default::default()
            };
            let mut solver = AdmmSolver::new(problem, settings).unwrap();
            let x0 = Vector::from_fn(6, |i| (i as f64 - 2.5) * 0.3);
            solver
                .solve_in_place(x0.as_slice(), &mut NullExecutor)
                .unwrap()
        };
        let loose = mk(1e-2);
        let tight = mk(1e-6);
        assert!(tight.iterations >= loose.iterations);
        if loose.converged && tight.converged {
            assert!(tight.residuals.0 <= loose.residuals.0 + 1e-12);
        }
    }
}

/// Zero initial state with a zero reference is a fixed point: the solver
/// converges immediately to (near-)zero control.
#[test]
fn origin_is_fixed_point() {
    for seed in 0..64u64 {
        let problem = problems::random_stable::<f64>(5, 2, 8, seed * 3).unwrap();
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let r = solver
            .solve_in_place(Vector::<f64>::zeros(5).as_slice(), &mut NullExecutor)
            .unwrap();
        assert!(r.converged);
        let peak = solver.u0().iter().fold(0.0f64, |m, u| m.max(u.abs()));
        assert!(peak < 1e-6, "u0 {:?} should be ~0", solver.u0());
    }
}

/// Scaling rho changes the path but not feasibility of the answer.
#[test]
fn rho_robustness() {
    for case in 0..32u64 {
        let mut rng = Rng(case + 100);
        let seed = rng.below(0, 100);
        let rho = rng.f64(0.1, 10.0);
        let mut problem = problems::random_stable::<f64>(4, 1, 10, seed).unwrap();
        problem.rho = rho;
        let (u_min, u_max) = (problem.u_min, problem.u_max);
        let mut solver = AdmmSolver::new(problem, SolverSettings::default()).unwrap();
        let x0 = [2.0, -1.0, 0.5, 0.0];
        solver.solve_in_place(&x0, &mut NullExecutor).unwrap();
        assert!(solver.workspace().is_finite());
        for &u in solver.u0() {
            assert!(u >= u_min - 1e-9 && u <= u_max + 1e-9);
        }
    }
}

#[test]
fn cartpole_closed_loop_balances() {
    let p = problems::cartpole::<f64>(25).unwrap();
    let a = p.a.clone();
    let b = p.b.clone();
    let mut solver = AdmmSolver::new(p, SolverSettings::default()).unwrap();
    // 0.15 rad initial pole tilt.
    let mut x = Vector::from_slice(&[0.0, 0.0, 0.15, 0.0]);
    for _ in 0..600 {
        solver
            .solve_in_place(x.as_slice(), &mut NullExecutor)
            .unwrap();
        let u0 = Vector::from_slice(solver.u0());
        x = a.matvec(&x).unwrap().add(&b.matvec(&u0).unwrap()).unwrap();
        assert!(x.is_finite());
    }
    assert!(x[2].abs() < 0.01, "pole not balanced: {:?}", x[2]);
    assert!(x[0].abs() < 0.5, "cart drifted: {:?}", x[0]);
}

#[test]
fn rocket_landing_reaches_pad() {
    let p = problems::rocket_landing::<f64>(15).unwrap();
    let a = p.a.clone();
    let b = p.b.clone();
    let mut solver = AdmmSolver::new(p, SolverSettings::default()).unwrap();
    // 20 m up, 8 m off to the side, descending.
    let mut x = Vector::from_slice(&[8.0, 20.0, 0.0, 0.0, -2.0, 0.0]);
    for _ in 0..600 {
        solver
            .solve_in_place(x.as_slice(), &mut NullExecutor)
            .unwrap();
        let u0 = Vector::from_slice(solver.u0());
        x = a.matvec(&x).unwrap().add(&b.matvec(&u0).unwrap()).unwrap();
        assert!(x.is_finite());
    }
    assert!(
        x[0].abs() < 0.2 && x[1].abs() < 0.2,
        "missed the pad: {:?}",
        x
    );
}
