//! Executes a [`SweepSpec`] on a [`SweepEngine`] and renders the report.
//!
//! The report body is assembled purely from engine *results* (which are
//! bit-identical to the serial path) and deterministic cache accounting,
//! so `render()` is byte-identical for any `--jobs` value. Wall-clock
//! shard timing — the only scheduling-dependent observable — is kept in
//! [`render_timing`](SweepReport::render_timing), which callers print to
//! stderr.

use crate::engine::{EngineStats, FaultStats, SweepEngine};
use crate::pool::ShardStats;
use crate::spec::SweepSpec;
use soc_dse::experiments::{
    evaluate_closed_loop, pareto_frontier, speedup_heatmap_with, CycleSource, SolveRequest,
    SolveSummary,
};
use soc_dse::report::{heatmap_text, markdown_table};
use tinympc::SolverSettings;

/// Which pricing tier drives a sweep's end-to-end solve search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepTier {
    /// Trace simulation prices every point (the reference path).
    #[default]
    Trace,
    /// Analytical bounds run first: points whose `[lo, hi]` interval is
    /// strictly dominated are marked prunable, then **every** point is
    /// still trace-priced, each total is checked against its interval,
    /// and the frontier over the surviving candidates is asserted equal
    /// to the all-points frontier. The report body stays byte-identical
    /// to [`SweepTier::Trace`]; the tier's accounting goes to
    /// [`SweepReport::tier_summary`] (stderr).
    Analytical,
}

/// The rendered outcome of one sweep pass.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Deterministic report body (tables, Pareto, heatmaps).
    pub body: String,
    /// Deterministic cache accounting for the pass.
    pub stats: EngineStats,
    /// Nondeterministic per-shard timing for the pass.
    pub shards: Vec<ShardStats>,
    /// Shard-pool width the pass ran with.
    pub jobs: usize,
    /// Work items that exhausted their retry budget and render as
    /// explicit `FAILED` rows in the body. Zero on a clean run —
    /// deterministic under seeded chaos injection, so the body stays
    /// byte-identical for any `--jobs`.
    pub failed_points: usize,
    /// Fault-recovery accounting for the pass (stderr only).
    pub faults: FaultStats,
    /// Analytical-tier accounting (pruning, containment, frontier
    /// confirmation), present only for [`SweepTier::Analytical`]. Kept
    /// out of [`SweepReport::render`] so the body stays byte-identical
    /// across tiers; print it to stderr.
    pub tier_summary: Option<String>,
}

impl SweepReport {
    /// Deterministic report: body + cache accounting. Byte-identical
    /// for every `--jobs` value given the same spec and cache state.
    pub fn render(&self) -> String {
        format!("{}{}\n", self.body, self.stats.render_line())
    }

    /// Per-shard wall-clock timing (scheduling-dependent; stderr only).
    pub fn render_timing(&self) -> String {
        let mut out = format!("jobs: {}\n", self.jobs);
        for s in &self.shards {
            out.push_str(&format!(
                "shard {:>2}: {:>4} items in {:>8.3} ms\n",
                s.shard,
                s.items,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

/// Runs every work item of `spec` through `engine` and assembles the
/// report, trace-pricing everything (the reference tier).
///
/// # Errors
///
/// Propagates solver failures.
pub fn run_sweep(spec: &SweepSpec, engine: &SweepEngine) -> tinympc::Result<SweepReport> {
    run_sweep_tiered(spec, engine, SweepTier::Trace)
}

/// Runs every work item of `spec` through `engine` under the given
/// pricing tier and assembles the report. The engine's stats are reset
/// at entry (and between the analytical and trace passes) so the report
/// accounts for exactly the trace pass — a `--warm` second pass
/// therefore shows the warm hit rate, not a blend, and the rendered body
/// is byte-identical across tiers.
///
/// # Errors
///
/// Propagates solver failures; under [`SweepTier::Analytical`] also
/// [`tinympc::Error::AnalysisMismatch`] when a trace-priced total falls
/// outside its analytical interval or bounds-pruning would have changed
/// the Pareto frontier.
pub fn run_sweep_tiered(
    spec: &SweepSpec,
    engine: &SweepEngine,
    tier: SweepTier,
) -> tinympc::Result<SweepReport> {
    // All end-to-end solves of the whole spec go down as ONE batch so
    // the shard pool can balance across horizons and platforms.
    let requests: Vec<SolveRequest> = spec
        .horizons
        .iter()
        .flat_map(|&horizon| {
            spec.platforms
                .iter()
                .map(move |p| SolveRequest::new(p.clone(), spec.scenario.clone(), horizon))
        })
        .collect();

    // Analytical pre-pass: price the whole grid as intervals first. Its
    // cache accounting is snapshotted separately so the trace pass below
    // reports exactly what the trace-only tier would.
    let analytical = match tier {
        SweepTier::Trace => None,
        SweepTier::Analytical => {
            engine.reset_stats();
            let intervals: Vec<(u64, u64)> = engine
                .bounds_batch(&requests)
                .into_iter()
                .collect::<tinympc::Result<_>>()?;
            Some((intervals, engine.stats()))
        }
    };

    engine.reset_stats();
    let mut body = format!(
        "# sweep: {}\n\nworkload: {} - {}\n\n",
        spec.label,
        spec.scenario.name(),
        spec.scenario.title()
    );
    // Every slot is either a summary, an isolated shard failure (which
    // renders as an explicit FAILED row — the partial sweep still
    // completes), or a genuine solver error (which propagates).
    let mut summaries: Vec<Option<SolveSummary>> = Vec::with_capacity(requests.len());
    let mut failed_points = 0usize;
    for slot in engine.solve_batch(&requests) {
        match slot {
            Ok(summary) => summaries.push(Some(summary)),
            Err(tinympc::Error::ShardFailed { .. }) => {
                failed_points += 1;
                summaries.push(None);
            }
            Err(e) => return Err(e),
        }
    }
    let mut summaries_iter = summaries.iter();

    for &horizon in &spec.horizons {
        let mut rows: Vec<(String, f64, Option<u64>)> = Vec::with_capacity(spec.platforms.len());
        for platform in &spec.platforms {
            let summary = summaries_iter.next().expect("one summary per request");
            rows.push((
                platform.name.clone(),
                platform.area().total(),
                summary.as_ref().map(|s| s.total_cycles),
            ));
        }

        body.push_str(&format!("## Table I @ horizon {horizon}\n\n"));
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, area, cycles)| match cycles {
                Some(cycles) => vec![
                    name.clone(),
                    format!("{area:.0}"),
                    cycles.to_string(),
                    format!("{:.0}", 1.0e9 / (*cycles).max(1) as f64),
                ],
                None => vec![
                    name.clone(),
                    format!("{area:.0}"),
                    "FAILED".to_string(),
                    "-".to_string(),
                ],
            })
            .collect();
        body.push_str(&markdown_table(
            &[
                "configuration",
                "area (um^2)",
                "cycles/solve",
                "MPC Hz @1GHz",
            ],
            &table,
        ));

        body.push_str(&format!("\n## Pareto frontier @ horizon {horizon}\n\n"));
        let mut by_area: Vec<&(String, f64, Option<u64>)> = rows.iter().collect();
        by_area.sort_by(|a, b| a.1.total_cmp(&b.1));
        // Failed points are listed (marked `!`) but cannot join the
        // frontier: their cycle count is unknown.
        let priced: Vec<&(String, f64, Option<u64>)> = by_area
            .iter()
            .copied()
            .filter(|(_, _, c)| c.is_some())
            .collect();
        let frontier = pareto_frontier(
            &priced
                .iter()
                .map(|(_, area, cycles)| (*area, cycles.unwrap_or(u64::MAX) as f64))
                .collect::<Vec<_>>(),
        );
        let mut on_frontier = priced.iter().zip(frontier);
        for (name, area, cycles) in &by_area {
            match cycles {
                Some(cycles) => {
                    let on = on_frontier.next().map(|(_, on)| on).unwrap_or(false);
                    body.push_str(&format!(
                        "{}{name:<24} {:>8.3} mm^2 {cycles:>10} cycles\n",
                        if on { "* " } else { "  " },
                        area / 1e6
                    ));
                }
                None => {
                    body.push_str(&format!(
                        "! {name:<24} {:>8.3} mm^2     FAILED\n",
                        area / 1e6
                    ));
                }
            }
        }
        body.push('\n');

        // Closed-loop quality is a property of the scenario × horizon
        // pair alone (executors are timing oracles: every back-end
        // computes bit-identical f32 math), so it is evaluated once
        // here — serially, deterministically — and holds for the whole
        // back-end grid above.
        body.push_str(&format!("## Closed-loop tracking @ horizon {horizon}\n\n"));
        let cl = evaluate_closed_loop::<f32>(&spec.scenario, horizon, SolverSettings::default())?;
        body.push_str(&format!(
            "{}: {} rollout steps, tracking error RMS/max {:.4} / {:.4}, \
             final {:.4}, {}/{} solves converged, {:.1} mean ADMM iters\n",
            spec.scenario.name(),
            cl.steps,
            cl.rms_error,
            cl.max_error,
            cl.final_error,
            cl.converged_steps,
            cl.steps,
            cl.mean_iterations
        ));
        if let Some(margin) = cl.min_cone_margin {
            body.push_str(&format!(
                "min SOC feasibility margin of applied u0: {margin:.4}\n"
            ));
        }
        body.push('\n');
    }

    for hm in &spec.heatmaps {
        let heat = speedup_heatmap_with(
            engine,
            &hm.numerator,
            &hm.denominator,
            hm.shape,
            hm.residency,
            &hm.heights,
            &hm.widths,
        );
        body.push_str(&format!("## {}\n\n", hm.title));
        let text = heatmap_text("", &heat.heights, &heat.widths, &heat.values);
        body.push_str(text.trim_start_matches('\n'));
        body.push('\n');
    }

    let tier_summary = match analytical {
        None => None,
        Some((intervals, bounds_stats)) => Some(confirm_analytical_tier(
            spec,
            &intervals,
            &summaries,
            &bounds_stats,
        )?),
    };

    Ok(SweepReport {
        body,
        stats: engine.stats(),
        shards: engine.shard_stats(),
        jobs: engine.jobs(),
        failed_points,
        faults: engine.fault_stats(),
        tier_summary,
    })
}

/// The analytical tier's confirmation pass: check every trace-priced
/// total against its interval, replay the bounds-only pruning decision,
/// and assert the frontier over the surviving candidates matches the
/// all-points frontier exactly.
fn confirm_analytical_tier(
    spec: &SweepSpec,
    intervals: &[(u64, u64)],
    summaries: &[Option<SolveSummary>],
    bounds_stats: &EngineStats,
) -> tinympc::Result<String> {
    let mut out = String::from("tier analytical:\n");
    for (h_idx, &horizon) in spec.horizons.iter().enumerate() {
        let base = h_idx * spec.platforms.len();
        // (name, area, lo, hi, trace-priced cycles) per design point.
        // Points whose trace pricing failed (isolated shard failure)
        // carry no total and are excluded from containment and
        // frontier confirmation — noted in the summary line.
        let mut failed = 0usize;
        let points: Vec<(&str, f64, u64, u64, u64)> = spec
            .platforms
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let (lo, hi) = intervals[base + i];
                match &summaries[base + i] {
                    Some(s) => Some((p.name.as_str(), p.area().total(), lo, hi, s.total_cycles)),
                    None => {
                        failed += 1;
                        None
                    }
                }
            })
            .collect();

        for &(name, _, lo, hi, cycles) in &points {
            if !(lo <= cycles && cycles <= hi) {
                return Err(tinympc::Error::AnalysisMismatch {
                    what: format!(
                        "{name} @ horizon {horizon}: trace-priced {cycles} cycles \
                         outside analytical bounds [{lo}, {hi}]"
                    ),
                });
            }
        }

        // A point is prunable when some interval beats its best case
        // outright at no area cost: upper_q < lower_p with area_q <=
        // area_p guarantees domination whatever the true cycle counts.
        let prunable: Vec<bool> = points
            .iter()
            .map(|p| points.iter().any(|q| q.1 <= p.1 && q.3 < p.2))
            .collect();
        let pruned = prunable.iter().filter(|&&x| x).count();

        let frontier_names = |keep: &dyn Fn(usize) -> bool| -> Vec<&str> {
            let mut kept: Vec<&(&str, f64, u64, u64, u64)> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(_, p)| p)
                .collect();
            kept.sort_by(|a, b| a.1.total_cmp(&b.1));
            let coords: Vec<(f64, f64)> = kept.iter().map(|p| (p.1, p.4 as f64)).collect();
            kept.iter()
                .zip(pareto_frontier(&coords))
                .filter(|(_, on)| *on)
                .map(|(p, _)| p.0)
                .collect()
        };
        let full = frontier_names(&|_| true);
        let candidates = frontier_names(&|i| !prunable[i]);
        if full != candidates {
            return Err(tinympc::Error::AnalysisMismatch {
                what: format!(
                    "horizon {horizon}: frontier over bounds-pruned candidates \
                     {candidates:?} differs from all-points frontier {full:?}"
                ),
            });
        }

        out.push_str(&format!(
            "  horizon {horizon}: {} points, {pruned} pruned by bounds, \
             all totals within bounds, frontier confirmed ({} points)\n",
            points.len(),
            full.len()
        ));
        if failed > 0 {
            out.push_str(&format!(
                "  horizon {horizon}: {failed} FAILED point(s) excluded from confirmation\n"
            ));
        }
    }
    out.push_str(&format!("  bounds {}\n", bounds_stats.render_line()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_byte_identical_across_job_counts() {
        let spec = SweepSpec::smoke();
        let reference = run_sweep(&spec, &SweepEngine::in_memory(1))
            .unwrap()
            .render();
        assert!(reference.contains("# sweep: smoke"));
        assert!(reference.contains("Pareto frontier"));
        assert!(reference.contains("hit rate 0.0%"), "{reference}");
        for jobs in [4, 16] {
            let report = run_sweep(&spec, &SweepEngine::in_memory(jobs)).unwrap();
            assert_eq!(report.render(), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn warm_pass_reports_full_hit_rate() {
        let spec = SweepSpec::smoke();
        let engine = SweepEngine::in_memory(4);
        let cold = run_sweep(&spec, &engine).unwrap();
        let warm = run_sweep(&spec, &engine).unwrap();
        assert_eq!(cold.body, warm.body, "results identical when warm");
        assert_eq!(warm.stats.misses, 0, "zero regenerations");
        assert!((warm.stats.hit_rate_percent() - 100.0).abs() < 1e-12);
        assert!(warm.render().contains("hit rate 100.0%"));
    }

    #[test]
    fn analytical_tier_report_is_byte_identical_to_trace_tier() {
        let spec = SweepSpec::smoke();
        let reference = run_sweep(&spec, &SweepEngine::in_memory(2))
            .unwrap()
            .render();
        let tiered =
            run_sweep_tiered(&spec, &SweepEngine::in_memory(2), SweepTier::Analytical).unwrap();
        assert_eq!(
            tiered.render(),
            reference,
            "tiering must not leak into the body"
        );
        let summary = tiered
            .tier_summary
            .expect("analytical tier reports a summary");
        assert!(summary.starts_with("tier analytical:"), "{summary}");
        assert!(summary.contains("frontier confirmed"), "{summary}");
        assert!(summary.contains("all totals within bounds"), "{summary}");
    }

    #[test]
    fn trace_tier_has_no_tier_summary() {
        let report = run_sweep(&SweepSpec::smoke(), &SweepEngine::in_memory(2)).unwrap();
        assert!(report.tier_summary.is_none());
    }

    #[test]
    fn recovered_chaos_run_is_byte_identical_to_clean() {
        use crate::engine::{ChaosAction, ChaosCtx, ChaosHook};
        use std::sync::Arc;
        let spec = SweepSpec::smoke();
        let reference = run_sweep(&spec, &SweepEngine::in_memory(1))
            .unwrap()
            .render();
        for jobs in [1, 4] {
            // Strike the first attempt of every third work item: each
            // strike panics once, the retry recovers it.
            let hook: ChaosHook = Arc::new(|ctx: &ChaosCtx| {
                (ctx.attempt == 1 && ctx.item.is_multiple_of(3))
                    .then(|| ChaosAction::Panic("chaos: injected worker panic".into()))
            });
            let engine = SweepEngine::in_memory(jobs).with_chaos(hook);
            let report = run_sweep(&spec, &engine).unwrap();
            assert_eq!(report.render(), reference, "jobs={jobs}");
            assert_eq!(report.failed_points, 0);
            assert!(report.faults.retries > 0, "strikes actually happened");
        }
    }

    #[test]
    fn exhausted_item_renders_a_failed_row_and_the_sweep_completes() {
        use crate::engine::{ChaosAction, ChaosCtx, ChaosHook};
        use std::sync::Arc;
        let spec = SweepSpec::smoke();
        // Work item 0 of the solve batch (batch 0) fails every attempt.
        let hook: ChaosHook = Arc::new(|ctx: &ChaosCtx| {
            (ctx.batch == 0 && ctx.item == 0)
                .then(|| ChaosAction::Panic("chaos: persistent fault".into()))
        });
        let render = |jobs| {
            let engine = SweepEngine::in_memory(jobs).with_chaos(hook.clone());
            let report = run_sweep(&spec, &engine).unwrap();
            assert_eq!(report.failed_points, 1, "jobs={jobs}");
            assert_eq!(report.faults.failed_items, 1);
            report.render()
        };
        let reference = render(1);
        assert!(reference.contains("FAILED"), "{reference}");
        assert!(reference.contains("! "), "failed Pareto row marked");
        for jobs in [4, 16] {
            assert_eq!(render(jobs), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn timing_goes_to_the_timing_channel_only() {
        let spec = SweepSpec::smoke();
        let engine = SweepEngine::in_memory(2);
        let report = run_sweep(&spec, &engine).unwrap();
        assert!(report.render_timing().starts_with("jobs: 2"));
        assert!(!report.render().contains("ms"), "no wall time in the body");
    }
}
