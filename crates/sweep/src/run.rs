//! Executes a [`SweepSpec`] on a [`SweepEngine`] and renders the report.
//!
//! The report body is assembled purely from engine *results* (which are
//! bit-identical to the serial path) and deterministic cache accounting,
//! so `render()` is byte-identical for any `--jobs` value. Wall-clock
//! shard timing — the only scheduling-dependent observable — is kept in
//! [`render_timing`](SweepReport::render_timing), which callers print to
//! stderr.

use crate::engine::{EngineStats, SweepEngine};
use crate::pool::ShardStats;
use crate::spec::SweepSpec;
use soc_dse::experiments::{pareto_frontier, speedup_heatmap_with, CycleSource, SolveRequest};
use soc_dse::report::{heatmap_text, markdown_table};

/// The rendered outcome of one sweep pass.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Deterministic report body (tables, Pareto, heatmaps).
    pub body: String,
    /// Deterministic cache accounting for the pass.
    pub stats: EngineStats,
    /// Nondeterministic per-shard timing for the pass.
    pub shards: Vec<ShardStats>,
    /// Shard-pool width the pass ran with.
    pub jobs: usize,
}

impl SweepReport {
    /// Deterministic report: body + cache accounting. Byte-identical
    /// for every `--jobs` value given the same spec and cache state.
    pub fn render(&self) -> String {
        format!("{}{}\n", self.body, self.stats.render_line())
    }

    /// Per-shard wall-clock timing (scheduling-dependent; stderr only).
    pub fn render_timing(&self) -> String {
        let mut out = format!("jobs: {}\n", self.jobs);
        for s in &self.shards {
            out.push_str(&format!(
                "shard {:>2}: {:>4} items in {:>8.3} ms\n",
                s.shard,
                s.items,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

/// Runs every work item of `spec` through `engine` and assembles the
/// report. The engine's stats are reset at entry so the report accounts
/// for exactly this pass (a `--warm` second pass therefore shows the
/// warm hit rate, not a blend).
///
/// # Errors
///
/// Propagates solver failures.
pub fn run_sweep(spec: &SweepSpec, engine: &SweepEngine) -> tinympc::Result<SweepReport> {
    engine.reset_stats();
    let mut body = format!("# sweep: {}\n\n", spec.label);

    // All end-to-end solves of the whole spec go down as ONE batch so
    // the shard pool can balance across horizons and platforms.
    let requests: Vec<SolveRequest> = spec
        .horizons
        .iter()
        .flat_map(|&horizon| {
            spec.platforms.iter().map(move |p| SolveRequest {
                platform: p.clone(),
                horizon,
            })
        })
        .collect();
    let mut summaries = engine.solve_batch(&requests).into_iter();

    for &horizon in &spec.horizons {
        let mut rows = Vec::with_capacity(spec.platforms.len());
        for platform in &spec.platforms {
            let summary = summaries.next().expect("one summary per request")?;
            rows.push((
                platform.name.clone(),
                platform.area().total(),
                summary.total_cycles,
            ));
        }

        body.push_str(&format!("## Table I @ horizon {horizon}\n\n"));
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, area, cycles)| {
                vec![
                    name.clone(),
                    format!("{area:.0}"),
                    cycles.to_string(),
                    format!("{:.0}", 1.0e9 / (*cycles).max(1) as f64),
                ]
            })
            .collect();
        body.push_str(&markdown_table(
            &[
                "configuration",
                "area (um^2)",
                "cycles/solve",
                "MPC Hz @1GHz",
            ],
            &table,
        ));

        body.push_str(&format!("\n## Pareto frontier @ horizon {horizon}\n\n"));
        let mut by_area: Vec<&(String, f64, u64)> = rows.iter().collect();
        by_area.sort_by(|a, b| a.1.total_cmp(&b.1));
        let frontier = pareto_frontier(
            &by_area
                .iter()
                .map(|(_, area, cycles)| (*area, *cycles as f64))
                .collect::<Vec<_>>(),
        );
        for ((name, area, cycles), on) in by_area.iter().zip(frontier) {
            body.push_str(&format!(
                "{}{name:<24} {:>8.3} mm^2 {cycles:>10} cycles\n",
                if on { "* " } else { "  " },
                area / 1e6
            ));
        }
        body.push('\n');
    }

    for hm in &spec.heatmaps {
        let heat = speedup_heatmap_with(
            engine,
            &hm.numerator,
            &hm.denominator,
            hm.shape,
            hm.residency,
            &hm.heights,
            &hm.widths,
        );
        body.push_str(&format!("## {}\n\n", hm.title));
        let text = heatmap_text("", &heat.heights, &heat.widths, &heat.values);
        body.push_str(text.trim_start_matches('\n'));
        body.push('\n');
    }

    Ok(SweepReport {
        body,
        stats: engine.stats(),
        shards: engine.shard_stats(),
        jobs: engine.jobs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_byte_identical_across_job_counts() {
        let spec = SweepSpec::smoke();
        let reference = run_sweep(&spec, &SweepEngine::in_memory(1))
            .unwrap()
            .render();
        assert!(reference.contains("# sweep: smoke"));
        assert!(reference.contains("Pareto frontier"));
        assert!(reference.contains("hit rate 0.0%"), "{reference}");
        for jobs in [4, 16] {
            let report = run_sweep(&spec, &SweepEngine::in_memory(jobs)).unwrap();
            assert_eq!(report.render(), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn warm_pass_reports_full_hit_rate() {
        let spec = SweepSpec::smoke();
        let engine = SweepEngine::in_memory(4);
        let cold = run_sweep(&spec, &engine).unwrap();
        let warm = run_sweep(&spec, &engine).unwrap();
        assert_eq!(cold.body, warm.body, "results identical when warm");
        assert_eq!(warm.stats.misses, 0, "zero regenerations");
        assert!((warm.stats.hit_rate_percent() - 100.0).abs() < 1e-12);
        assert!(warm.render().contains("hit rate 100.0%"));
    }

    #[test]
    fn timing_goes_to_the_timing_channel_only() {
        let spec = SweepSpec::smoke();
        let engine = SweepEngine::in_memory(2);
        let report = run_sweep(&spec, &engine).unwrap();
        assert!(report.render_timing().starts_with("jobs: 2"));
        assert!(!report.render().contains("ms"), "no wall time in the body");
    }
}
