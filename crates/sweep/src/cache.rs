//! Content-addressed cycle cache: in-memory map with an optional,
//! self-healing on-disk tier.
//!
//! Layout on disk (one file per entry, under the cache directory):
//!
//! ```text
//! <32-hex-digit key>.entry
//!   line 1: soc-sweep-cache v2        (format magic + version)
//!   line 2: kind solve | kind kernel | kind solve-bounds
//!   solve:  total_cycles / iterations / converged / kernels k=v,k=v,...
//!   kernel: cycles N
//!   solve-bounds: lo N / hi N
//!   last:   checksum <16-hex>         (FNV-1a over everything above)
//! ```
//!
//! Writes are atomic (`.tmp-<pid>` then rename) so a crashed or
//! concurrent `dse` never leaves a torn entry. Every entry carries a
//! checksum footer; an entry whose bytes fail the checksum or whose
//! body fails to parse is **quarantined** — moved into
//! `<dir>/quarantine/` next to a `.reason` file naming the corruption —
//! counted (see [`SweepCache::corrupt_entries`]), and treated as a
//! miss. The recompute then rewrites a healed entry at the original
//! path, so a corrupted cache converges back to a 100% hit rate on the
//! next warm run instead of silently degrading forever. Only `Ok`
//! results are persisted — errors stay in the in-memory tier so a
//! transient failure is never immortalized.

use crate::key::Key;
use soc_dse::experiments::SolveSummary;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use tinympc::KernelId;

/// Which tier answered a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Answered from the in-memory map.
    Memory,
    /// Answered from the on-disk tier (and promoted to memory).
    Disk,
}

/// v2: entries carry a `checksum` footer line (v1 entries are keyed
/// under the old `CACHE_VERSION` and are simply never probed).
const MAGIC: &str = "soc-sweep-cache v2";

/// Subdirectory corrupt entries are moved into, next to their reason
/// files.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Two-tier (memory + optional disk) cache for sweep work products.
#[derive(Debug, Default)]
pub struct SweepCache {
    dir: Option<PathBuf>,
    solves: HashMap<Key, tinympc::Result<SolveSummary>>,
    kernels: HashMap<Key, u64>,
    bounds: HashMap<Key, tinympc::Result<(u64, u64)>>,
    corrupt_entries: usize,
}

impl SweepCache {
    /// Memory-only cache (the `--no-cache` disk-less mode still
    /// memoizes within the process).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Cache backed by `dir`; the directory is created if absent.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SweepCache {
            dir: Some(dir),
            ..Self::default()
        })
    }

    /// The disk tier's directory, if one is attached.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Where corrupt entries are moved, if a disk tier is attached.
    pub fn quarantine_dir(&self) -> Option<PathBuf> {
        Some(self.dir.as_ref()?.join(QUARANTINE_DIR))
    }

    /// Number of entries resident in memory.
    pub fn len(&self) -> usize {
        self.solves.len() + self.kernels.len() + self.bounds.len()
    }

    /// On-disk entries that failed their checksum or body parse (torn
    /// writes, bit rot, foreign bytes) and were therefore quarantined
    /// and degraded to misses.
    pub fn corrupt_entries(&self) -> usize {
        self.corrupt_entries
    }

    /// True when no entries are resident in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes for a solve summary; disk hits are promoted to memory.
    pub fn get_solve(&mut self, key: &Key) -> Option<(tinympc::Result<SolveSummary>, HitLevel)> {
        if let Some(v) = self.solves.get(key) {
            return Some((v.clone(), HitLevel::Memory));
        }
        let summary = self.read_entry(key, parse_solve)?;
        self.solves.insert(*key, Ok(summary.clone()));
        Some((Ok(summary), HitLevel::Disk))
    }

    /// Stores a solve summary in memory, and on disk when `Ok`.
    pub fn put_solve(&mut self, key: Key, value: &tinympc::Result<SolveSummary>) {
        if let Ok(summary) = value {
            self.write_entry(&key, &render_solve(summary));
        }
        self.solves.insert(key, value.clone());
    }

    /// Probes for a standalone-kernel cycle count.
    pub fn get_kernel(&mut self, key: &Key) -> Option<(u64, HitLevel)> {
        if let Some(&c) = self.kernels.get(key) {
            return Some((c, HitLevel::Memory));
        }
        let cycles = self.read_entry(key, parse_kernel)?;
        self.kernels.insert(*key, cycles);
        Some((cycles, HitLevel::Disk))
    }

    /// Stores a standalone-kernel cycle count in memory and on disk.
    pub fn put_kernel(&mut self, key: Key, cycles: u64) {
        self.write_entry(&key, &render_kernel(cycles));
        self.kernels.insert(key, cycles);
    }

    /// Probes for an analytical solve-bounds interval `(lo, hi)`.
    pub fn get_bounds(&mut self, key: &Key) -> Option<(tinympc::Result<(u64, u64)>, HitLevel)> {
        if let Some(v) = self.bounds.get(key) {
            return Some((v.clone(), HitLevel::Memory));
        }
        let interval = self.read_entry(key, parse_bounds)?;
        self.bounds.insert(*key, Ok(interval));
        Some((Ok(interval), HitLevel::Disk))
    }

    /// Stores an analytical solve-bounds interval in memory, and on disk
    /// when `Ok`.
    pub fn put_bounds(&mut self, key: Key, value: &tinympc::Result<(u64, u64)>) {
        if let Ok((lo, hi)) = value {
            self.write_entry(&key, &render_bounds(*lo, *hi));
        }
        self.bounds.insert(key, value.clone());
    }

    fn entry_path(&self, key: &Key) -> Option<PathBuf> {
        Some(self.dir.as_ref()?.join(format!("{}.entry", key.to_hex())))
    }

    fn read_entry<T>(&mut self, key: &Key, parse: fn(&str) -> Option<T>) -> Option<T> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        let reason = match verify_seal(&text) {
            Err(reason) => Some(reason),
            Ok(()) => match parse(&text) {
                Some(parsed) => return Some(parsed),
                // Checksum valid but the body is not something this
                // probe can use: format drift or a kind mismatch.
                None => Some("well-sealed entry with an unparsable body".to_string()),
            },
        };
        // The file exists but its bytes are bad: a degradation worth
        // surfacing (unlike a plain absent-entry miss) — quarantine the
        // evidence and let the recompute heal the original path.
        self.corrupt_entries += 1;
        self.quarantine(key, &path, &reason.unwrap_or_default());
        None
    }

    /// Moves a corrupt entry into the quarantine subdirectory and drops
    /// a `.reason` file beside it. Best-effort: IO failures degrade to
    /// leaving the bad entry in place (it will be overwritten by the
    /// healed rewrite anyway).
    fn quarantine(&self, key: &Key, path: &Path, reason: &str) {
        let Some(qdir) = self.quarantine_dir() else {
            return;
        };
        if std::fs::create_dir_all(&qdir).is_err() {
            return;
        }
        let hex = key.to_hex();
        let _ = std::fs::rename(path, qdir.join(format!("{hex}.entry")));
        let _ = std::fs::write(
            qdir.join(format!("{hex}.reason")),
            format!("soc-sweep quarantine\nkey {hex}\nreason {reason}\n"),
        );
    }

    /// Atomic write: tmp file + rename. IO failures degrade the disk
    /// tier to a no-op (the result is still served from memory).
    fn write_entry(&self, key: &Key, body: &str) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        let sealed = seal(body);
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(sealed.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// 64-bit FNV-1a over the entry body, rendered into the footer line.
fn body_checksum(body: &str) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    for &b in body.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Appends the checksum footer to a rendered entry body.
fn seal(body: &str) -> String {
    format!("{body}checksum {:016x}\n", body_checksum(body))
}

/// Validates the checksum footer of on-disk bytes, returning the
/// corruption reason on failure.
fn verify_seal(text: &str) -> Result<(), String> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let Some(footer_at) = trimmed.rfind('\n') else {
        return Err("entry too short for a checksum footer".to_string());
    };
    let (body, footer) = trimmed.split_at(footer_at + 1);
    let Some(stored) = footer.strip_prefix("checksum ") else {
        return Err("missing checksum footer".to_string());
    };
    let Ok(stored) = u64::from_str_radix(stored.trim_end(), 16) else {
        return Err(format!("unparsable checksum footer `{footer}`"));
    };
    let computed = body_checksum(body);
    if stored != computed {
        return Err(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        ));
    }
    Ok(())
}

fn render_solve(s: &SolveSummary) -> String {
    let kernels: Vec<String> = s
        .kernel_cycles
        .iter()
        .map(|(k, c)| format!("{k:?}={c}"))
        .collect();
    format!(
        "{MAGIC}\nkind solve\ntotal_cycles {}\niterations {}\nconverged {}\nkernels {}\n",
        s.total_cycles,
        s.iterations,
        s.converged,
        kernels.join(",")
    )
}

fn render_kernel(cycles: u64) -> String {
    format!("{MAGIC}\nkind kernel\ncycles {cycles}\n")
}

fn render_bounds(lo: u64, hi: u64) -> String {
    format!("{MAGIC}\nkind solve-bounds\nlo {lo}\nhi {hi}\n")
}

fn field<'a>(lines: &mut std::str::Lines<'a>, name: &str) -> Option<&'a str> {
    lines.next()?.strip_prefix(name)?.strip_prefix(' ')
}

fn kernel_id_by_name(name: &str) -> Option<KernelId> {
    KernelId::ALL
        .iter()
        .copied()
        .find(|k| format!("{k:?}") == name)
}

fn parse_solve(text: &str) -> Option<SolveSummary> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC || lines.next()? != "kind solve" {
        return None;
    }
    let total_cycles = field(&mut lines, "total_cycles")?.parse().ok()?;
    let iterations = field(&mut lines, "iterations")?.parse().ok()?;
    let converged = match field(&mut lines, "converged")? {
        "true" => true,
        "false" => false,
        _ => return None,
    };
    let mut kernel_cycles = BTreeMap::new();
    for pair in field(&mut lines, "kernels")?
        .split(',')
        .filter(|p| !p.is_empty())
    {
        let (name, cycles) = pair.split_once('=')?;
        kernel_cycles.insert(kernel_id_by_name(name)?, cycles.parse().ok()?);
    }
    Some(SolveSummary {
        total_cycles,
        iterations,
        converged,
        kernel_cycles,
    })
}

fn parse_kernel(text: &str) -> Option<u64> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC || lines.next()? != "kind kernel" {
        return None;
    }
    field(&mut lines, "cycles")?.parse().ok()
}

fn parse_bounds(text: &str) -> Option<(u64, u64)> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC || lines.next()? != "kind solve-bounds" {
        return None;
    }
    let lo: u64 = field(&mut lines, "lo")?.parse().ok()?;
    let hi: u64 = field(&mut lines, "hi")?.parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::key_of;

    fn summary() -> SolveSummary {
        let mut kernel_cycles = BTreeMap::new();
        kernel_cycles.insert(KernelId::ForwardPass1, 123);
        kernel_cycles.insert(KernelId::DualResidualInput, 7);
        SolveSummary {
            total_cycles: 392_261,
            iterations: 35,
            converged: true,
            kernel_cycles,
        }
    }

    #[test]
    fn solve_round_trips_through_text() {
        let s = summary();
        assert_eq!(parse_solve(&render_solve(&s)), Some(s));
    }

    #[test]
    fn kernel_round_trips_through_text() {
        assert_eq!(parse_kernel(&render_kernel(40_961)), Some(40_961));
    }

    #[test]
    fn bounds_round_trip_through_text() {
        assert_eq!(parse_bounds(&render_bounds(100, 140)), Some((100, 140)));
        assert_eq!(parse_bounds(&render_bounds(7, 7)), Some((7, 7)));
        assert_eq!(
            parse_bounds("soc-sweep-cache v2\nkind solve-bounds\nlo 9\nhi 3\n"),
            None,
            "inverted intervals are rejected"
        );
        assert_eq!(parse_bounds(&render_kernel(9)), None);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        assert_eq!(parse_solve(""), None);
        assert_eq!(parse_solve("soc-sweep-cache v0\nkind solve\n"), None);
        assert_eq!(
            parse_kernel("soc-sweep-cache v2\nkind solve\ncycles 1\n"),
            None
        );
        assert_eq!(
            parse_solve(&render_solve(&summary()).replace("kernels", "kernelz")),
            None
        );
        assert_eq!(
            parse_solve(&render_solve(&summary()).replace("ForwardPass1", "NotAKernel")),
            None
        );
    }

    #[test]
    fn seal_round_trips_and_rejects_tampering() {
        let body = render_kernel(123);
        let sealed = seal(&body);
        assert!(verify_seal(&sealed).is_ok());
        // One flipped digit in the body: the checksum catches it.
        let tampered = sealed.replace("cycles 123", "cycles 124");
        let err = verify_seal(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // Truncation (torn write) is caught too.
        assert!(verify_seal(&sealed[..sealed.len() / 2]).is_err());
        assert!(verify_seal("").is_err());
        assert!(verify_seal("no footer at all\n").is_err());
    }

    #[test]
    fn disk_tier_round_trips_and_promotes() {
        let dir = std::env::temp_dir().join(format!("soc-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_of("disk round trip");

        let mut writer = SweepCache::with_dir(&dir).unwrap();
        writer.put_solve(key, &Ok(summary()));
        writer.put_kernel(key_of("kernel"), 99);

        // A fresh cache over the same directory sees both entries as
        // disk hits, then serves them from memory.
        let mut reader = SweepCache::with_dir(&dir).unwrap();
        assert!(reader.is_empty());
        let (got, level) = reader.get_solve(&key).unwrap();
        assert_eq!(got.unwrap(), summary());
        assert_eq!(level, HitLevel::Disk);
        let (_, level) = reader.get_solve(&key).unwrap();
        assert_eq!(level, HitLevel::Memory);
        assert_eq!(reader.get_kernel(&key_of("kernel")).unwrap().0, 99);
        assert_eq!(reader.get_kernel(&key_of("absent")), None);

        // Torn/corrupt on-disk bytes degrade to a *counted* miss, not an
        // error — and a plain absent entry is not counted.
        std::fs::write(dir.join(format!("{}.entry", key.to_hex())), "garbage").unwrap();
        let mut corrupt = SweepCache::with_dir(&dir).unwrap();
        assert_eq!(corrupt.corrupt_entries(), 0);
        assert_eq!(corrupt.get_solve(&key), None);
        assert_eq!(corrupt.corrupt_entries(), 1);
        assert_eq!(corrupt.get_kernel(&key_of("never written")), None);
        assert_eq!(corrupt.corrupt_entries(), 1, "absent entries not counted");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_with_reason_then_healed() {
        let dir = std::env::temp_dir().join(format!("soc-sweep-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_of("quarantine me");
        let hex = key.to_hex();

        let mut writer = SweepCache::with_dir(&dir).unwrap();
        writer.put_kernel(key, 4_321);

        // Corrupt the entry on disk (simulated bit rot).
        let entry = dir.join(format!("{hex}.entry"));
        let bytes = std::fs::read_to_string(&entry).unwrap();
        std::fs::write(&entry, bytes.replace("4321", "9999")).unwrap();

        // The probe misses, counts, and quarantines entry + reason.
        let mut reader = SweepCache::with_dir(&dir).unwrap();
        assert_eq!(reader.get_kernel(&key), None);
        assert_eq!(reader.corrupt_entries(), 1);
        assert!(!entry.exists(), "corrupt entry moved out of the hot path");
        let qdir = reader.quarantine_dir().unwrap();
        assert!(qdir.join(format!("{hex}.entry")).exists());
        let reason = std::fs::read_to_string(qdir.join(format!("{hex}.reason"))).unwrap();
        assert!(reason.contains("checksum mismatch"), "{reason}");
        assert!(reason.contains(&hex), "{reason}");

        // Heal: the recompute rewrites the entry; a cold reopen now hits.
        reader.put_kernel(key, 4_321);
        let mut healed = SweepCache::with_dir(&dir).unwrap();
        assert_eq!(healed.get_kernel(&key), Some((4_321, HitLevel::Disk)));
        assert_eq!(healed.corrupt_entries(), 0, "healed entry is clean");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounds_disk_tier_round_trips_and_skips_errors() {
        let dir = std::env::temp_dir().join(format!("soc-sweep-bounds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_of("bounds entry");

        let mut writer = SweepCache::with_dir(&dir).unwrap();
        writer.put_bounds(key, &Ok((1_000, 1_250)));
        writer.put_bounds(
            key_of("failed bounds"),
            &Err(tinympc::Error::CorruptedWorkspace {
                what: "synthetic".into(),
            }),
        );

        let mut reader = SweepCache::with_dir(&dir).unwrap();
        let (got, level) = reader.get_bounds(&key).unwrap();
        assert_eq!(got.unwrap(), (1_000, 1_250));
        assert_eq!(level, HitLevel::Disk);
        assert_eq!(reader.get_bounds(&key).unwrap().1, HitLevel::Memory);
        assert_eq!(
            reader.get_bounds(&key_of("failed bounds")),
            None,
            "errored bounds are never persisted"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_only_cache_never_touches_disk() {
        let mut cache = SweepCache::in_memory();
        let key = key_of("mem");
        assert_eq!(cache.get_solve(&key), None);
        cache.put_solve(key, &Ok(summary()));
        assert_eq!(cache.get_solve(&key).unwrap().1, HitLevel::Memory);
        assert_eq!(cache.dir(), None);
    }
}
