//! Content-addressed cache keys.
//!
//! A key is a 128-bit FNV-1a hash over a *stable serialization* of
//! everything that determines a cycle count: a cache-format version tag,
//! the request kind, the platform's canonical configuration identity
//! ([`soc_dse::platform::Platform::cache_id`] — every behavior-affecting
//! field spelled out explicitly, display names excluded), and the
//! request parameters. Any change to a config field or to
//! [`CACHE_VERSION`] changes the key — so a stale cache can only ever
//! miss, never answer wrong — while a purely cosmetic rename of a
//! platform keeps its cached results.

use soc_dse::experiments::{KernelRequest, KernelShape, Residency, SolveRequest};

/// Bump whenever cycle semantics change (solver defaults, trace
/// generation, simulation timing) so old cache entries are orphaned
/// rather than trusted.
///
/// v2: keys switched from `Debug`-rendered platforms to canonical
/// registry `cache_id`s.
///
/// v3: on-disk entries gained a checksum footer (cache format v2);
/// keying the format version orphans un-checksummed entries instead of
/// quarantining them as corrupt.
///
/// v4: solve and solve-bounds requests gained a scenario axis; the
/// scenario's `cache_id` joined the serialization, so pre-scenario
/// entries (implicitly hover-only) are orphaned rather than aliased.
pub const CACHE_VERSION: u32 = 4;

/// A 128-bit content hash identifying one unit of sweep work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u64, pub u64);

impl Key {
    /// Hex form, used as the on-disk file name.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

/// 64-bit FNV-1a over `bytes`, from a caller-supplied offset basis.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hashes a stable serialization string into a [`Key`]. Two independent
/// FNV-1a streams (the standard offset basis and a decorrelated one)
/// give 128 bits, enough that accidental collisions across a sweep of
/// thousands of configs are not a practical concern.
pub fn key_of(serialized: &str) -> Key {
    const BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
    const BASIS_B: u64 = 0x6c62_272e_07bb_0142;
    let bytes = serialized.as_bytes();
    Key(fnv1a(BASIS_A, bytes), fnv1a(BASIS_B, bytes))
}

/// Stable serialization of a solve request.
pub fn solve_serialization(request: &SolveRequest) -> String {
    format!(
        "soc-sweep v{CACHE_VERSION}|solve|{}|scenario={}|horizon={}",
        request.platform.cache_id(),
        request.scenario.cache_id(),
        request.horizon
    )
}

/// Stable serialization of a standalone-kernel request.
pub fn kernel_serialization(request: &KernelRequest) -> String {
    let shape = match request.shape {
        KernelShape::Gemv => "gemv",
        KernelShape::Gemm => "gemm",
    };
    let residency = match request.residency {
        Residency::Cold => "cold",
        Residency::Warm => "warm",
    };
    format!(
        "soc-sweep v{CACHE_VERSION}|kernel|{}|{shape}|{residency}|i={}|k={}",
        request.platform.cache_id(),
        request.i,
        request.k
    )
}

/// Stable serialization of an analytical solve-bounds request. A
/// distinct kind tag keeps bound intervals and trace-priced totals from
/// ever aliasing, even for the same platform and horizon.
pub fn bounds_serialization(request: &SolveRequest) -> String {
    format!(
        "soc-sweep v{CACHE_VERSION}|solve-bounds|{}|scenario={}|horizon={}",
        request.platform.cache_id(),
        request.scenario.cache_id(),
        request.horizon
    )
}

/// Key of a solve request.
pub fn solve_key(request: &SolveRequest) -> Key {
    key_of(&solve_serialization(request))
}

/// Key of an analytical solve-bounds request.
pub fn bounds_key(request: &SolveRequest) -> Key {
    key_of(&bounds_serialization(request))
}

/// Key of a standalone-kernel request.
pub fn kernel_key(request: &KernelRequest) -> Key {
    key_of(&kernel_serialization(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_dse::experiments::{KernelShape, Residency};
    use soc_dse::platform::Platform;

    fn solve_req(horizon: usize) -> SolveRequest {
        SolveRequest::hover(Platform::rocket_eigen(), horizon)
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        let a = solve_key(&solve_req(10));
        let b = solve_key(&solve_req(10));
        assert_eq!(a, b, "same request must hash identically");
        assert_ne!(a, solve_key(&solve_req(11)), "horizon must be keyed");
    }

    #[test]
    fn platform_config_is_keyed() {
        use soc_cpu::CoreConfig;
        use soc_vector::SaturnConfig;
        let a = SolveRequest::hover(
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d128()),
            10,
        );
        let b = SolveRequest::hover(
            Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256()),
            10,
        );
        assert_ne!(solve_key(&a), solve_key(&b));
    }

    #[test]
    fn kernel_params_are_keyed() {
        let base = KernelRequest {
            platform: Platform::rocket_eigen(),
            shape: KernelShape::Gemv,
            residency: Residency::Cold,
            i: 8,
            k: 8,
        };
        let mut warm = base.clone();
        warm.residency = Residency::Warm;
        let mut gemm = base.clone();
        gemm.shape = KernelShape::Gemm;
        let mut wider = base.clone();
        wider.k = 16;
        let keys = [
            kernel_key(&base),
            kernel_key(&warm),
            kernel_key(&gemm),
            kernel_key(&wider),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn scenario_is_keyed() {
        use soc_dse::experiments::{Scenario, ScenarioCatalog};
        let platform = Platform::rocket_eigen();
        // Every catalog scenario (and a random-family member) must key
        // distinctly at the same platform and horizon, for both solve
        // and bounds kinds.
        let mut scenarios = ScenarioCatalog::standard().into_scenarios();
        scenarios.push(Scenario::random_stable_plant(8, 3, 7));
        scenarios.push(Scenario::random_stable_plant(8, 3, 8));
        let keys: Vec<Key> = scenarios
            .iter()
            .map(|s| solve_key(&SolveRequest::new(platform.clone(), s.clone(), 10)))
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate().skip(i + 1) {
                assert_ne!(
                    a,
                    b,
                    "{} and {} collide",
                    scenarios[i].name(),
                    scenarios[j].name()
                );
            }
        }
        let hover = SolveRequest::hover(platform.clone(), 10);
        let fig8 = SolveRequest::new(platform, Scenario::figure8(), 10);
        assert_ne!(bounds_key(&hover), bounds_key(&fig8));
    }

    #[test]
    fn bounds_keys_never_alias_solve_keys() {
        let req = solve_req(10);
        assert_ne!(solve_key(&req), bounds_key(&req));
        assert_ne!(bounds_key(&req), bounds_key(&solve_req(11)));
    }

    #[test]
    fn hex_is_32_chars() {
        assert_eq!(solve_key(&solve_req(10)).to_hex().len(), 32);
    }

    #[test]
    fn renaming_a_platform_keeps_its_key() {
        let mut renamed = Platform::rocket_eigen();
        renamed.name = "Rocket (marketing name)".into();
        let a = SolveRequest::hover(Platform::rocket_eigen(), 10);
        let b = SolveRequest::hover(renamed, 10);
        assert_eq!(
            solve_key(&a),
            solve_key(&b),
            "display names must not affect cache identity"
        );
    }

    #[test]
    fn distinct_shipped_configs_never_collide() {
        use soc_dse::verify::shipped_configurations;
        let shipped = shipped_configurations();
        for (i, a) in shipped.iter().enumerate() {
            for b in &shipped[i + 1..] {
                assert_ne!(
                    a.cache_id(),
                    b.cache_id(),
                    "{} and {} serialize identically",
                    a.name,
                    b.name
                );
                let ka = solve_key(&SolveRequest::hover(a.clone(), 10));
                let kb = solve_key(&SolveRequest::hover(b.clone(), 10));
                assert_ne!(ka, kb, "{} and {} collide", a.name, b.name);
            }
        }
    }
}
