//! # soc-sweep — parallel, memoized design-space sweeps
//!
//! The paper's artifact is a sweep: Table I, the kernel heatmaps, and
//! the area/performance Pareto frontier are all grids of independent
//! cycle-level simulations. This crate turns that shape into a batch
//! engine:
//!
//! * [`spec`] — declarative sweep specifications (platform grid ×
//!   horizons × kernel grids), with [`SweepSpec::smoke`] and
//!   [`SweepSpec::full`] presets.
//! * [`key`] — content-addressed cache keys: a stable 128-bit FNV-1a
//!   hash over the full platform configuration and request parameters.
//! * [`cache`] — the two-tier (in-memory + on-disk) memo table with
//!   atomic writes and corrupt-entry tolerance.
//! * [`pool`] — a scoped `std::thread` shard pool that self-balances
//!   via an atomic work counter while keeping results in item order.
//! * [`engine`] — [`SweepEngine`], the parallel
//!   [`CycleSource`](soc_dse::experiments::CycleSource): serial probe
//!   (deterministic cache accounting), parallel execute, serial commit.
//! * [`run`] — [`run_sweep`]: executes a spec and renders the report,
//!   deterministic body on stdout, shard timing for stderr.
//!
//! ## Determinism contract
//!
//! For any spec and any `jobs >= 1`, [`run_sweep`]'s rendered report is
//! byte-identical to the `jobs = 1` run, and every cycle count is
//! bit-identical to [`SerialSource`](soc_dse::experiments::SerialSource).
//! Only [`ShardStats`] — wall time and per-shard item
//! counts — depend on scheduling, and they are rendered separately.
//!
//! ## Fault tolerance
//!
//! The execution stack survives partial failure with bounded,
//! observable degradation: every work item runs under `catch_unwind`
//! with a bounded retry budget ([`RetryPolicy`]), items that exhaust it
//! surface as [`tinympc::Error::ShardFailed`] slots and explicit
//! `FAILED` report rows instead of aborting the sweep, the engine lock
//! recovers from poisoning, and corrupt disk-cache entries are
//! checksummed, quarantined with a reason file, and healed on
//! recompute. Deterministic chaos campaigns over this machinery live in
//! `soc-faults::chaos` (`dse chaos`).
//!
//! ## Quickstart
//!
//! ```
//! use soc_sweep::{run_sweep, SweepEngine, SweepSpec};
//!
//! let engine = SweepEngine::in_memory(4);
//! let report = run_sweep(&SweepSpec::smoke(), &engine).unwrap();
//! assert!(report.render().contains("# sweep: smoke"));
//! // A second pass over the same engine regenerates nothing.
//! let warm = run_sweep(&SweepSpec::smoke(), &engine).unwrap();
//! assert_eq!(warm.stats.misses, 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod key;
pub mod pool;
pub mod run;
pub mod spec;

pub use cache::SweepCache;
pub use engine::{ChaosAction, ChaosCtx, ChaosHook, EngineStats, FaultStats, SweepEngine};
pub use pool::{
    run_sharded, run_sharded_isolated, BatchJob, RetryPolicy, ShardFailure, ShardStats,
    TickExecutor,
};
pub use run::{run_sweep, run_sweep_tiered, SweepReport, SweepTier};
pub use spec::{HeatmapSpec, SweepSpec};
