//! A scoped `std::thread` shard pool with dynamic work stealing and
//! per-item panic isolation.
//!
//! Items are claimed one at a time off a shared atomic counter, so
//! shards self-balance (a shard stuck on an expensive BOOM solve does
//! not idle the others), while results land in per-item slots so the
//! output order is the input order — scheduling can never reorder or
//! otherwise perturb what the caller sees.
//!
//! Every item runs under [`std::panic::catch_unwind`]: a panicking work
//! item never takes its shard (or the whole batch) down. Failed items
//! are retried in place up to a bounded attempt budget with a
//! deterministic per-attempt backoff; an item that exhausts the budget
//! surfaces as a typed [`ShardFailure`] in its result slot while every
//! other slot still carries its computed value. A per-item deadline
//! watchdog counts items whose (successful) computation overran the
//! configured budget — the result is kept, but the overrun becomes an
//! observable signal in [`ShardStats`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// What one shard (worker thread) did during a batch.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub shard: usize,
    /// Items this shard computed (counting an item once however many
    /// attempts it took).
    pub items: usize,
    /// Extra attempts this shard spent re-running panicked items.
    pub retries: usize,
    /// Successful items whose computation overran the per-item
    /// deadline watchdog (the results are still used).
    pub watchdog_trips: usize,
    /// Wall time the shard spent, from spawn to drain.
    pub wall: Duration,
}

/// One work item that panicked on every attempt of its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the item within the batch.
    pub item: usize,
    /// Attempts made (the full budget).
    pub attempts: u32,
    /// Stringified panic payload from the last attempt.
    pub payload: String,
}

/// Bounded-retry and watchdog policy for a sharded batch.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per item (first run + retries). Clamped to >= 1.
    pub max_attempts: u32,
    /// Base backoff slept before retry `n` as `backoff * n` — a
    /// deterministic, linearly growing schedule (ordering, not timing,
    /// is what the determinism contract covers).
    pub backoff: Duration,
    /// Per-item deadline: a successful attempt slower than this trips
    /// the watchdog counter in [`ShardStats`]. `None` disables it.
    pub item_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(500),
            item_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (and never sleeps).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            item_deadline: None,
        }
    }
}

/// Renders a panic payload for diagnostics: `String` and `&str`
/// payloads verbatim, anything else as a placeholder.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every item on `jobs` worker threads with per-item
/// panic isolation, returning per-item `Result` slots **in item order**
/// plus per-shard statistics.
///
/// `f` receives `(item_index, attempt, item)`; `attempt` starts at 1
/// and reaches at most `policy.max_attempts`. A panicking attempt is
/// caught and retried in place (after a deterministic backoff) until
/// the budget is exhausted, at which point the slot carries a
/// [`ShardFailure`] with the last panic's payload. All other slots are
/// unaffected — one poisoned item can no longer abort a batch.
///
/// Determinism contract: as long as `f` is a pure function of
/// `(item, attempt)`, the returned vector is identical for every
/// `jobs >= 1`. Only [`ShardStats`] (timing, per-shard counts) vary
/// with scheduling.
pub fn run_sharded_isolated<T, R, F>(
    jobs: usize,
    items: &[T],
    policy: RetryPolicy,
    f: F,
) -> (Vec<Result<R, ShardFailure>>, Vec<ShardStats>)
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, u32, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let budget = policy.max_attempts.max(1);
    let slots: Vec<OnceLock<Result<R, ShardFailure>>> =
        items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let mut stats = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let (slots, next, f) = (&slots, &next, &f);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut done = 0usize;
                    let mut retries = 0usize;
                    let mut watchdog_trips = 0usize;
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else {
                            break;
                        };
                        let mut attempt = 1u32;
                        let outcome = loop {
                            let attempt_start = Instant::now();
                            match catch_unwind(AssertUnwindSafe(|| f(idx, attempt, item))) {
                                Ok(value) => {
                                    if let Some(deadline) = policy.item_deadline {
                                        if attempt_start.elapsed() > deadline {
                                            watchdog_trips += 1;
                                        }
                                    }
                                    break Ok(value);
                                }
                                Err(panic) => {
                                    if attempt >= budget {
                                        break Err(ShardFailure {
                                            item: idx,
                                            attempts: attempt,
                                            payload: payload_string(panic.as_ref()),
                                        });
                                    }
                                    retries += 1;
                                    if !policy.backoff.is_zero() {
                                        std::thread::sleep(policy.backoff * attempt);
                                    }
                                    attempt += 1;
                                }
                            }
                        };
                        assert!(
                            slots[idx].set(outcome).is_ok(),
                            "work item {idx} claimed twice"
                        );
                        done += 1;
                    }
                    ShardStats {
                        shard,
                        items: done,
                        retries,
                        watchdog_trips,
                        wall: start.elapsed(),
                    }
                })
            })
            .collect();
        for handle in handles {
            // A shard body can no longer panic (every user closure runs
            // under catch_unwind), so a join failure would indicate a
            // bug in the pool itself.
            stats.push(handle.join().expect("shard bookkeeping panicked"));
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("work item left uncomputed"))
        .collect();
    (results, stats)
}

/// Runs `f` over every item on `jobs` worker threads and returns the
/// results **in item order** plus per-shard statistics.
///
/// Determinism contract: as long as `f` is a pure function of its item,
/// the returned vector is identical for every `jobs >= 1`. Only
/// [`ShardStats`] (timing, per-shard item counts) vary with scheduling.
///
/// # Panics
///
/// Re-raises a panic from `f` (with its stringified payload) after the
/// whole batch has drained — use [`run_sharded_isolated`] to handle
/// failures per item instead.
pub fn run_sharded<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, Vec<ShardStats>)
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let (results, stats) =
        run_sharded_isolated(jobs, items, RetryPolicy::no_retry(), |_, _, item| f(item));
    let results = results
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(failure) => panic!("work item {} panicked: {}", failure.item, failure.payload),
        })
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16, 128] {
            let (got, stats) = run_sharded(jobs, &items, |x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
            assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert_eq!(stats.len(), jobs.min(items.len()));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (got, stats) = run_sharded::<u8, u8, _>(8, &[], |x| *x);
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, 0);
    }

    #[test]
    fn pool_never_spawns_more_shards_than_items() {
        let (got, stats) = run_sharded(16, &[1, 2], |x| x + 1);
        assert_eq!(got, vec![2, 3]);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn panicking_item_is_recovered_on_retry() {
        // Item 3 panics on its first attempt only; the retry succeeds
        // and the batch is indistinguishable from a clean run.
        let items: Vec<u64> = (0..8).collect();
        let policy = RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        for jobs in [1, 4, 16] {
            let (got, stats) = run_sharded_isolated(jobs, &items, policy, |idx, attempt, x| {
                if idx == 3 && attempt == 1 {
                    panic!("chaos: injected worker panic");
                }
                x * 10
            });
            let values: Vec<u64> = got.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70], "jobs={jobs}");
            assert_eq!(
                stats.iter().map(|s| s.retries).sum::<usize>(),
                1,
                "exactly one retry, jobs={jobs}"
            );
        }
    }

    #[test]
    fn exhausted_retry_surfaces_a_shard_failure() {
        let items: Vec<u64> = (0..6).collect();
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        for jobs in [1, 4] {
            let (got, _) = run_sharded_isolated(jobs, &items, policy, |idx, _, x| {
                if idx == 2 {
                    panic!("chaos: persistent fault");
                }
                x + 1
            });
            for (idx, slot) in got.iter().enumerate() {
                if idx == 2 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.item, 2);
                    assert_eq!(failure.attempts, 3);
                    assert!(failure.payload.contains("persistent fault"));
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), items[idx] + 1, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn failure_slots_are_jobs_invariant() {
        let items: Vec<u64> = (0..32).collect();
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        let outcome = |jobs| {
            run_sharded_isolated(jobs, &items, policy, |idx, _, x| {
                if idx % 7 == 3 {
                    panic!("fails every attempt");
                }
                x * 3
            })
            .0
        };
        let reference = outcome(1);
        for jobs in [2, 4, 16] {
            assert_eq!(outcome(jobs), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn watchdog_counts_slow_items_without_discarding_them() {
        let items: Vec<u64> = (0..4).collect();
        let policy = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            item_deadline: Some(Duration::from_millis(5)),
        };
        let (got, stats) = run_sharded_isolated(2, &items, policy, |idx, _, x| {
            if idx == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x + 100
        });
        let values: Vec<u64> = got.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![100, 101, 102, 103], "slow results are kept");
        assert_eq!(stats.iter().map(|s| s.watchdog_trips).sum::<usize>(), 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let calls = AtomicUsize::new(0);
        let items = [0u8];
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        let (got, _) = run_sharded_isolated(1, &items, policy, |_, _, _: &u8| -> u8 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always");
        });
        assert_eq!(calls.load(Ordering::Relaxed), 4, "budget respected");
        assert_eq!(got[0].as_ref().unwrap_err().attempts, 4);
    }

    #[test]
    fn run_sharded_reraises_after_draining() {
        let result = catch_unwind(|| {
            run_sharded(2, &[1u8, 2, 3], |x| {
                if *x == 2 {
                    panic!("boom");
                }
                *x
            })
        });
        let payload = result.unwrap_err();
        assert!(payload_string(payload.as_ref()).contains("boom"));
    }
}
