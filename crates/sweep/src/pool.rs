//! A scoped `std::thread` shard pool with dynamic work stealing.
//!
//! Items are claimed one at a time off a shared atomic counter, so
//! shards self-balance (a shard stuck on an expensive BOOM solve does
//! not idle the others), while results land in per-item slots so the
//! output order is the input order — scheduling can never reorder or
//! otherwise perturb what the caller sees.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// What one shard (worker thread) did during a batch.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub shard: usize,
    /// Items this shard computed.
    pub items: usize,
    /// Wall time the shard spent, from spawn to drain.
    pub wall: Duration,
}

/// Runs `f` over every item on `jobs` worker threads and returns the
/// results **in item order** plus per-shard statistics.
///
/// Determinism contract: as long as `f` is a pure function of its item,
/// the returned vector is identical for every `jobs >= 1`. Only
/// [`ShardStats`] (timing, per-shard item counts) vary with scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope unwinds.
pub fn run_sharded<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, Vec<ShardStats>)
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let mut stats = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let (slots, next, f) = (&slots, &next, &f);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut done = 0usize;
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else {
                            break;
                        };
                        let computed = f(item);
                        assert!(
                            slots[idx].set(computed).is_ok(),
                            "work item {idx} claimed twice"
                        );
                        done += 1;
                    }
                    ShardStats {
                        shard,
                        items: done,
                        wall: start.elapsed(),
                    }
                })
            })
            .collect();
        for handle in handles {
            stats.push(handle.join().expect("sweep shard panicked"));
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("work item left uncomputed"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16, 128] {
            let (got, stats) = run_sharded(jobs, &items, |x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
            assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert_eq!(stats.len(), jobs.min(items.len()));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (got, stats) = run_sharded::<u8, u8, _>(8, &[], |x| *x);
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, 0);
    }

    #[test]
    fn pool_never_spawns_more_shards_than_items() {
        let (got, stats) = run_sharded(16, &[1, 2], |x| x + 1);
        assert_eq!(got, vec![2, 3]);
        assert_eq!(stats.len(), 2);
    }
}
