//! Work-stealing shard execution with per-item panic isolation — both
//! one-shot batches and a long-lived tick executor.
//!
//! Items are claimed one at a time off a shared atomic counter, so
//! shards self-balance (a shard stuck on an expensive BOOM solve does
//! not idle the others), while results land in per-item slots so the
//! output order is the input order — scheduling can never reorder or
//! otherwise perturb what the caller sees.
//!
//! Every item runs under [`std::panic::catch_unwind`]: a panicking work
//! item never takes its shard (or the whole batch) down. Failed items
//! are retried in place up to a bounded attempt budget with a
//! deterministic per-attempt backoff; an item that exhausts the budget
//! surfaces as a typed [`ShardFailure`] while every other item still
//! carries its computed value. A per-item deadline watchdog counts
//! items whose (successful) computation overran the configured
//! budget — the result is kept, but the overrun becomes an observable
//! signal in [`ShardStats`].
//!
//! The claim/retry/watchdog discipline lives in one place
//! ([`drain_batch`], driven through the [`BatchJob`] trait) and is
//! shared by two front ends:
//!
//! * [`run_sharded`] / [`run_sharded_isolated`] — the historical
//!   one-shot entry points over a borrowed item slice, used by the
//!   sweep engine. Scoped threads, spawned per batch.
//! * [`TickExecutor`] — a long-lived pool whose workers park between
//!   batches, built for recurring tick submission (the `soc-serve`
//!   session runtime submits the same job object thousands of times).
//!   After construction, [`TickExecutor::submit`] performs no heap
//!   allocation — the serve runtime's zero-allocation steady state
//!   extends through the executor itself.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// What one shard (worker thread) did during a batch.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index within the pool.
    pub shard: usize,
    /// Items this shard computed (counting an item once however many
    /// attempts it took).
    pub items: usize,
    /// Extra attempts this shard spent re-running panicked items.
    pub retries: usize,
    /// Successful items whose computation overran the per-item
    /// deadline watchdog (the results are still used).
    pub watchdog_trips: usize,
    /// Wall time the shard spent, from spawn to drain.
    pub wall: Duration,
}

impl ShardStats {
    /// An empty record for shard `shard` — the identity element of
    /// [`ShardStats::merge`].
    pub fn zero(shard: usize) -> Self {
        ShardStats {
            shard,
            items: 0,
            retries: 0,
            watchdog_trips: 0,
            wall: Duration::ZERO,
        }
    }

    /// Folds another shard's record into this one: counters add, wall
    /// time takes the maximum (shards run concurrently, so the slowest
    /// shard bounds the batch), and `self.shard` is kept as the label.
    pub fn merge(&mut self, other: &ShardStats) {
        self.items += other.items;
        self.retries += other.retries;
        self.watchdog_trips += other.watchdog_trips;
        self.wall = self.wall.max(other.wall);
    }

    /// The merged total of a batch's per-shard records (labelled shard
    /// 0): the single summary engine reports and serve diagnostics
    /// print instead of hand-summing fields.
    pub fn total(stats: &[ShardStats]) -> ShardStats {
        let mut acc = ShardStats::zero(0);
        for s in stats {
            acc.merge(s);
        }
        acc
    }
}

/// One work item that panicked on every attempt of its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the item within the batch.
    pub item: usize,
    /// Attempts made (the full budget).
    pub attempts: u32,
    /// Stringified panic payload from the last attempt.
    pub payload: String,
}

/// Bounded-retry and watchdog policy for a sharded batch.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per item (first run + retries). Clamped to >= 1.
    pub max_attempts: u32,
    /// Base backoff slept before retry `n` as `backoff * n` — a
    /// deterministic, linearly growing schedule (ordering, not timing,
    /// is what the determinism contract covers).
    pub backoff: Duration,
    /// Per-item deadline: a successful attempt slower than this trips
    /// the watchdog counter in [`ShardStats`]. `None` disables it.
    pub item_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(500),
            item_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (and never sleeps).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            item_deadline: None,
        }
    }
}

/// Renders a panic payload for diagnostics: `String` and `&str`
/// payloads verbatim, anything else as a placeholder.
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A batch of independent work items drained by shard workers.
///
/// The job owns its result storage: [`BatchJob::run`] computes and
/// records item `item` (it may panic — the pool catches, retries and
/// eventually routes the exhausted failure to [`BatchJob::fail`]).
/// Implementations must tolerate `run` being called again for the same
/// item after a panicked attempt.
pub trait BatchJob: Send + Sync {
    /// Number of items in the batch.
    fn items(&self) -> usize;
    /// Computes item `item` (attempts start at 1). May panic; the pool
    /// isolates and retries per [`RetryPolicy`].
    fn run(&self, item: usize, attempt: u32);
    /// Called once for an item whose every attempt panicked.
    fn fail(&self, failure: ShardFailure);
}

/// The shared claim/retry/watchdog loop: drains `job` from the shared
/// `next` counter until the batch is exhausted, returning this shard's
/// statistics. Both the scoped one-shot pool and the long-lived
/// [`TickExecutor`] run exactly this loop, so their isolation and
/// determinism guarantees are the same by construction.
fn drain_batch(
    job: &dyn BatchJob,
    policy: RetryPolicy,
    next: &AtomicUsize,
    shard: usize,
) -> ShardStats {
    let start = Instant::now();
    let budget = policy.max_attempts.max(1);
    let len = job.items();
    let mut done = 0usize;
    let mut retries = 0usize;
    let mut watchdog_trips = 0usize;
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= len {
            break;
        }
        let mut attempt = 1u32;
        loop {
            let attempt_start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| job.run(idx, attempt))) {
                Ok(()) => {
                    if let Some(deadline) = policy.item_deadline {
                        if attempt_start.elapsed() > deadline {
                            watchdog_trips += 1;
                        }
                    }
                    break;
                }
                Err(panic) => {
                    if attempt >= budget {
                        job.fail(ShardFailure {
                            item: idx,
                            attempts: attempt,
                            payload: payload_string(panic.as_ref()),
                        });
                        break;
                    }
                    retries += 1;
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff * attempt);
                    }
                    attempt += 1;
                }
            }
        }
        done += 1;
    }
    ShardStats {
        shard,
        items: done,
        retries,
        watchdog_trips,
        wall: start.elapsed(),
    }
}

/// Adapter giving a borrowed item slice + closure the [`BatchJob`]
/// shape: results land in per-item `OnceLock` slots, in item order.
struct SliceJob<'a, T, R, F> {
    items: &'a [T],
    slots: &'a [OnceLock<Result<R, ShardFailure>>],
    f: &'a F,
}

impl<T, R, F> BatchJob for SliceJob<'_, T, R, F>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, u32, &T) -> R + Sync,
{
    fn items(&self) -> usize {
        self.items.len()
    }

    fn run(&self, item: usize, attempt: u32) {
        let value = (self.f)(item, attempt, &self.items[item]);
        assert!(
            self.slots[item].set(Ok(value)).is_ok(),
            "work item {item} claimed twice"
        );
    }

    fn fail(&self, failure: ShardFailure) {
        let item = failure.item;
        assert!(
            self.slots[item].set(Err(failure)).is_ok(),
            "work item {item} claimed twice"
        );
    }
}

/// Runs `f` over every item on `jobs` worker threads with per-item
/// panic isolation, returning per-item `Result` slots **in item order**
/// plus per-shard statistics.
///
/// `f` receives `(item_index, attempt, item)`; `attempt` starts at 1
/// and reaches at most `policy.max_attempts`. A panicking attempt is
/// caught and retried in place (after a deterministic backoff) until
/// the budget is exhausted, at which point the slot carries a
/// [`ShardFailure`] with the last panic's payload. All other slots are
/// unaffected — one poisoned item can no longer abort a batch.
///
/// Determinism contract: as long as `f` is a pure function of
/// `(item, attempt)`, the returned vector is identical for every
/// `jobs >= 1`. Only [`ShardStats`] (timing, per-shard counts) vary
/// with scheduling.
pub fn run_sharded_isolated<T, R, F>(
    jobs: usize,
    items: &[T],
    policy: RetryPolicy,
    f: F,
) -> (Vec<Result<R, ShardFailure>>, Vec<ShardStats>)
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, u32, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let slots: Vec<OnceLock<Result<R, ShardFailure>>> =
        items.iter().map(|_| OnceLock::new()).collect();
    let job = SliceJob {
        items,
        slots: &slots,
        f: &f,
    };
    let next = AtomicUsize::new(0);
    let mut stats = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let (job, next) = (&job, &next);
                scope.spawn(move || drain_batch(job, policy, next, shard))
            })
            .collect();
        for handle in handles {
            // A shard body can no longer panic (every user closure runs
            // under catch_unwind), so a join failure would indicate a
            // bug in the pool itself.
            stats.push(handle.join().expect("shard bookkeeping panicked"));
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("work item left uncomputed"))
        .collect();
    (results, stats)
}

/// Runs `f` over every item on `jobs` worker threads and returns the
/// results **in item order** plus per-shard statistics.
///
/// Determinism contract: as long as `f` is a pure function of its item,
/// the returned vector is identical for every `jobs >= 1`. Only
/// [`ShardStats`] (timing, per-shard item counts) vary with scheduling.
///
/// # Panics
///
/// Re-raises a panic from `f` (with its stringified payload) after the
/// whole batch has drained — use [`run_sharded_isolated`] to handle
/// failures per item instead.
pub fn run_sharded<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, Vec<ShardStats>)
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let (results, stats) =
        run_sharded_isolated(jobs, items, RetryPolicy::no_retry(), |_, _, item| f(item));
    let results = results
        .into_iter()
        .map(|slot| match slot {
            Ok(value) => value,
            Err(failure) => panic!("work item {} panicked: {}", failure.item, failure.payload),
        })
        .collect();
    (results, stats)
}

/// Shared coordination state between a [`TickExecutor`] and its parked
/// workers.
struct TickShared {
    state: Mutex<TickState>,
    /// Workers park here waiting for a new batch epoch (or shutdown).
    work: Condvar,
    /// The submitter parks here waiting for the batch to drain.
    done: Condvar,
    /// The shared work-stealing claim counter, reset per batch.
    next: AtomicUsize,
}

struct TickState {
    /// Bumped once per submitted batch; workers run each epoch exactly
    /// once.
    epoch: u64,
    /// The current batch, cleared implicitly by the next submission.
    job: Option<Arc<dyn BatchJob>>,
    policy: RetryPolicy,
    /// Workers still draining the current epoch.
    active: usize,
    /// Merged statistics of the current epoch.
    stats: ShardStats,
    shutdown: bool,
}

/// Recovers a poisoned coordination lock: the guarded state is plain
/// bookkeeping, valid regardless of where a panic unwound (and worker
/// bodies run user code only under `catch_unwind` anyway).
fn tick_lock(shared: &TickShared) -> std::sync::MutexGuard<'_, TickState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A long-lived work-stealing executor for recurring tick batches.
///
/// Where [`run_sharded_isolated`] spawns scoped threads per call, a
/// `TickExecutor` spawns its workers once and parks them between
/// batches — the shape a session runtime needs when it submits the same
/// batch object once per control tick, thousands of times. Each
/// [`submit`](TickExecutor::submit) runs the identical
/// [`drain_batch`] loop as the one-shot pool (same panic isolation,
/// same bounded retries, same watchdog), and performs **zero heap
/// allocations**: the job is passed by `Arc` reference, the claim
/// counter and stats accumulator are reused, and per-shard records are
/// merged in place via [`ShardStats::merge`].
///
/// Determinism contract: as long as `BatchJob::run` is a pure function
/// of `(item, attempt)` (results recorded per item), outcomes are
/// identical for every worker count; only the merged [`ShardStats`]
/// vary with scheduling.
pub struct TickExecutor {
    shared: Arc<TickShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TickExecutor {
    /// Spawns `workers` parked worker threads (clamped to >= 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(TickShared {
            state: Mutex::new(TickState {
                epoch: 0,
                job: None,
                policy: RetryPolicy::no_retry(),
                active: 0,
                stats: ShardStats::zero(0),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared, shard))
            })
            .collect();
        TickExecutor {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn worker(shared: &TickShared, shard: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let (job, policy) = {
                let mut state = tick_lock(shared);
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen_epoch {
                        break;
                    }
                    state = shared
                        .work
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                seen_epoch = state.epoch;
                let job = state.job.as_ref().expect("batch epoch without a job");
                (Arc::clone(job), state.policy)
            };
            let stats = drain_batch(job.as_ref(), policy, &shared.next, shard);
            drop(job);
            let mut state = tick_lock(shared);
            state.stats.merge(&stats);
            state.active -= 1;
            if state.active == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// Runs one batch to completion on the parked workers and returns
    /// the merged shard statistics. Blocks until every item has
    /// drained; batches never overlap.
    pub fn submit(&self, job: &Arc<dyn BatchJob>, policy: RetryPolicy) -> ShardStats {
        let mut state = tick_lock(&self.shared);
        debug_assert_eq!(state.active, 0, "overlapping tick batches");
        self.shared.next.store(0, Ordering::Relaxed);
        state.job = Some(Arc::clone(job));
        state.policy = policy;
        state.stats = ShardStats::zero(0);
        state.active = self.workers.len();
        state.epoch += 1;
        let epoch = state.epoch;
        self.shared.work.notify_all();
        while state.active > 0 || state.epoch != epoch {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.job = None;
        state.stats
    }
}

impl Drop for TickExecutor {
    fn drop(&mut self) {
        {
            let mut state = tick_lock(&self.shared);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16, 128] {
            let (got, stats) = run_sharded(jobs, &items, |x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
            assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert_eq!(stats.len(), jobs.min(items.len()));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (got, stats) = run_sharded::<u8, u8, _>(8, &[], |x| *x);
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, 0);
    }

    #[test]
    fn pool_never_spawns_more_shards_than_items() {
        let (got, stats) = run_sharded(16, &[1, 2], |x| x + 1);
        assert_eq!(got, vec![2, 3]);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn panicking_item_is_recovered_on_retry() {
        // Item 3 panics on its first attempt only; the retry succeeds
        // and the batch is indistinguishable from a clean run.
        let items: Vec<u64> = (0..8).collect();
        let policy = RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        for jobs in [1, 4, 16] {
            let (got, stats) = run_sharded_isolated(jobs, &items, policy, |idx, attempt, x| {
                if idx == 3 && attempt == 1 {
                    panic!("chaos: injected worker panic");
                }
                x * 10
            });
            let values: Vec<u64> = got.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70], "jobs={jobs}");
            assert_eq!(
                stats.iter().map(|s| s.retries).sum::<usize>(),
                1,
                "exactly one retry, jobs={jobs}"
            );
        }
    }

    #[test]
    fn exhausted_retry_surfaces_a_shard_failure() {
        let items: Vec<u64> = (0..6).collect();
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        for jobs in [1, 4] {
            let (got, _) = run_sharded_isolated(jobs, &items, policy, |idx, _, x| {
                if idx == 2 {
                    panic!("chaos: persistent fault");
                }
                x + 1
            });
            for (idx, slot) in got.iter().enumerate() {
                if idx == 2 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.item, 2);
                    assert_eq!(failure.attempts, 3);
                    assert!(failure.payload.contains("persistent fault"));
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), items[idx] + 1, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn failure_slots_are_jobs_invariant() {
        let items: Vec<u64> = (0..32).collect();
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        let outcome = |jobs| {
            run_sharded_isolated(jobs, &items, policy, |idx, _, x| {
                if idx % 7 == 3 {
                    panic!("fails every attempt");
                }
                x * 3
            })
            .0
        };
        let reference = outcome(1);
        for jobs in [2, 4, 16] {
            assert_eq!(outcome(jobs), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn watchdog_counts_slow_items_without_discarding_them() {
        let items: Vec<u64> = (0..4).collect();
        let policy = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            item_deadline: Some(Duration::from_millis(5)),
        };
        let (got, stats) = run_sharded_isolated(2, &items, policy, |idx, _, x| {
            if idx == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x + 100
        });
        let values: Vec<u64> = got.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![100, 101, 102, 103], "slow results are kept");
        assert_eq!(stats.iter().map(|s| s.watchdog_trips).sum::<usize>(), 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let calls = AtomicUsize::new(0);
        let items = [0u8];
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
            item_deadline: None,
        };
        let (got, _) = run_sharded_isolated(1, &items, policy, |_, _, _: &u8| -> u8 {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always");
        });
        assert_eq!(calls.load(Ordering::Relaxed), 4, "budget respected");
        assert_eq!(got[0].as_ref().unwrap_err().attempts, 4);
    }

    #[test]
    fn run_sharded_reraises_after_draining() {
        let result = catch_unwind(|| {
            run_sharded(2, &[1u8, 2, 3], |x| {
                if *x == 2 {
                    panic!("boom");
                }
                *x
            })
        });
        let payload = result.unwrap_err();
        assert!(payload_string(payload.as_ref()).contains("boom"));
    }

    #[test]
    fn merge_adds_counters_and_takes_max_wall() {
        let mut a = ShardStats {
            shard: 0,
            items: 3,
            retries: 1,
            watchdog_trips: 0,
            wall: Duration::from_millis(10),
        };
        let b = ShardStats {
            shard: 5,
            items: 4,
            retries: 2,
            watchdog_trips: 1,
            wall: Duration::from_millis(7),
        };
        a.merge(&b);
        assert_eq!(a.shard, 0, "label kept");
        assert_eq!(a.items, 7);
        assert_eq!(a.retries, 3);
        assert_eq!(a.watchdog_trips, 1);
        assert_eq!(a.wall, Duration::from_millis(10));
        let t = ShardStats::total(&[a, b]);
        assert_eq!(t.items, 11);
        assert_eq!(t.retries, 5);
    }

    /// A recurring batch: each submission adds every item index into an
    /// accumulator. Attempt-independent, so outcomes are
    /// worker-count-invariant.
    struct SumJob {
        values: Vec<AtomicU64>,
        failures: AtomicUsize,
        panic_item: Option<usize>,
    }

    impl BatchJob for SumJob {
        fn items(&self) -> usize {
            self.values.len()
        }
        fn run(&self, item: usize, attempt: u32) {
            if Some(item) == self.panic_item && attempt == 1 {
                panic!("chaos: first attempt fails");
            }
            self.values[item].fetch_add(item as u64 + 1, Ordering::Relaxed);
        }
        fn fail(&self, _failure: ShardFailure) {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn tick_executor_drains_recurring_batches() {
        for workers in [1, 3, 8] {
            let pool = TickExecutor::new(workers);
            let job = Arc::new(SumJob {
                values: (0..50).map(|_| AtomicU64::new(0)).collect(),
                failures: AtomicUsize::new(0),
                panic_item: None,
            });
            let batch: Arc<dyn BatchJob> = job.clone();
            let ticks = 20u64;
            let mut merged = ShardStats::zero(0);
            for _ in 0..ticks {
                merged.merge(&pool.submit(&batch, RetryPolicy::no_retry()));
            }
            for (i, v) in job.values.iter().enumerate() {
                assert_eq!(
                    v.load(Ordering::Relaxed),
                    (i as u64 + 1) * ticks,
                    "workers={workers} item={i}"
                );
            }
            assert_eq!(merged.items as u64, 50 * ticks);
            assert_eq!(job.failures.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn tick_executor_retries_and_isolates_panics() {
        let pool = TickExecutor::new(4);
        let job = Arc::new(SumJob {
            values: (0..16).map(|_| AtomicU64::new(0)).collect(),
            failures: AtomicUsize::new(0),
            panic_item: Some(5),
        });
        let batch: Arc<dyn BatchJob> = job.clone();
        let stats = pool.submit(
            &batch,
            RetryPolicy {
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
        );
        assert_eq!(stats.retries, 1, "item 5 retried once");
        assert_eq!(job.values[5].load(Ordering::Relaxed), 6, "retry landed");
        assert_eq!(job.failures.load(Ordering::Relaxed), 0);
        // A persistent panic exhausts the budget and routes to fail().
        let job = Arc::new(PersistentPanic {
            failures: AtomicUsize::new(0),
        });
        let batch: Arc<dyn BatchJob> = job.clone();
        let stats = pool.submit(
            &batch,
            RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
                item_deadline: None,
            },
        );
        assert_eq!(stats.retries, 1);
        assert_eq!(job.failures.load(Ordering::Relaxed), 1);
    }

    struct PersistentPanic {
        failures: AtomicUsize,
    }

    impl BatchJob for PersistentPanic {
        fn items(&self) -> usize {
            1
        }
        fn run(&self, _item: usize, _attempt: u32) {
            panic!("always fails");
        }
        fn fail(&self, failure: ShardFailure) {
            assert_eq!(failure.attempts, 2);
            assert!(failure.payload.contains("always fails"));
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}
