//! The sweep engine: a parallel, memoized [`CycleSource`].
//!
//! Every batch runs in three phases:
//!
//! 1. **Probe** (serial, under the cache lock): each request is keyed
//!    and looked up. Hits are counted per tier; the *first* occurrence
//!    of each missing key becomes a work item, later duplicates are
//!    coalesced onto it. Because this phase is serial and in request
//!    order, the hit/miss/coalesced accounting is identical for every
//!    `--jobs` value.
//! 2. **Execute** (parallel, lock-free): the deduplicated work items are
//!    priced on the shard pool. Pricing is a pure function of the
//!    request, so scheduling cannot change any result.
//! 3. **Commit + assemble** (serial): results are inserted into the
//!    cache in work-item order, then every request — hit or miss — is
//!    answered from the cache, preserving request order.
//!
//! The result: bit-identical answers to [`SerialSource`] for any thread
//! count, with deterministic cache statistics and nondeterministic
//! timing confined to [`ShardStats`].
//!
//! [`SerialSource`]: soc_dse::experiments::SerialSource

use crate::cache::{HitLevel, SweepCache};
use crate::key::{bounds_key, kernel_key, solve_key, Key};
use crate::pool::{run_sharded, ShardStats};
use soc_dse::experiments::{
    solve_cycles, standalone_kernel, CycleSource, KernelRequest, SolveRequest, SolveSummary,
};
use std::collections::HashSet;
use std::sync::Mutex;

/// Deterministic cache accounting for an engine (or one pass of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total requests submitted.
    pub requests: usize,
    /// Requests answered from the in-memory tier.
    pub memory_hits: usize,
    /// Requests answered from the on-disk tier.
    pub disk_hits: usize,
    /// Duplicate in-batch requests folded onto an in-flight work item.
    pub coalesced: usize,
    /// Requests that forced a regeneration (trace + simulation).
    pub misses: usize,
}

impl EngineStats {
    /// Requests that did *not* regenerate anything.
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits + self.coalesced
    }

    /// Hit fraction in percent; an empty engine reports 0%.
    pub fn hit_rate_percent(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            100.0 * self.hits() as f64 / self.requests as f64
        }
    }

    /// One-line deterministic rendering for reports.
    pub fn render_line(&self) -> String {
        format!(
            "cache: {} requests, {} hits ({} memory, {} disk, {} coalesced), {} misses, hit rate {:.1}%",
            self.requests,
            self.hits(),
            self.memory_hits,
            self.disk_hits,
            self.coalesced,
            self.misses,
            self.hit_rate_percent()
        )
    }
}

struct Inner {
    cache: SweepCache,
    stats: EngineStats,
    shards: Vec<ShardStats>,
}

/// Parallel, memoized batch oracle for solve and kernel cycle counts.
pub struct SweepEngine {
    jobs: usize,
    inner: Mutex<Inner>,
}

impl SweepEngine {
    /// Engine over an explicit cache with a `jobs`-wide shard pool.
    pub fn new(jobs: usize, cache: SweepCache) -> Self {
        SweepEngine {
            jobs: jobs.max(1),
            inner: Mutex::new(Inner {
                cache,
                stats: EngineStats::default(),
                shards: Vec::new(),
            }),
        }
    }

    /// Engine with a memory-only cache (the `--no-cache` mode).
    pub fn in_memory(jobs: usize) -> Self {
        Self::new(jobs, SweepCache::in_memory())
    }

    /// Engine backed by an on-disk cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_cache_dir(
        jobs: usize,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        Ok(Self::new(jobs, SweepCache::with_dir(dir)?))
    }

    /// Shard-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Snapshot of the deterministic cache accounting.
    pub fn stats(&self) -> EngineStats {
        self.lock().stats
    }

    /// Per-shard timing collected so far (nondeterministic; report to
    /// stderr, never into a golden-checked report body).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.lock().shards.clone()
    }

    /// Clears accounting (but not cached results) — used between the
    /// cold and warm passes of `dse sweep --warm`.
    pub fn reset_stats(&self) {
        let mut inner = self.lock();
        inner.stats = EngineStats::default();
        inner.shards.clear();
    }

    /// On-disk entries that were readable but unparsable since the engine
    /// (or its cache directory) was opened. Nondeterministic across
    /// machines — report to stderr, never into a golden-checked body.
    pub fn corrupt_entries(&self) -> usize {
        self.lock().cache.corrupt_entries()
    }

    /// Analytical `[lo, hi]` solve-cycle bounds for each request, memoized
    /// under the `solve-bounds` cache kind. Runs the `soc-bounds` abstract
    /// interpreter twice per miss (once per interval side) instead of the
    /// trace simulator; results never alias trace-priced totals.
    pub fn bounds_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<(u64, u64)>> {
        self.batch(
            requests,
            bounds_key,
            SweepCache::get_bounds,
            |cache, key, value| cache.put_bounds(key, value),
            |r| soc_bounds::solve_bounds(&r.platform, r.horizon).map(|i| (i.lo, i.hi)),
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("sweep engine poisoned")
    }

    /// The three-phase batch described in the module docs, generic over
    /// the two work kinds.
    fn batch<Req, V>(
        &self,
        requests: &[Req],
        key_of: impl Fn(&Req) -> Key,
        get: impl Fn(&mut SweepCache, &Key) -> Option<(V, HitLevel)>,
        put: impl Fn(&mut SweepCache, Key, &V),
        compute: impl Fn(&Req) -> V + Sync,
    ) -> Vec<V>
    where
        Req: Clone + Sync,
        V: Clone + Send + Sync,
    {
        let keys: Vec<Key> = requests.iter().map(&key_of).collect();

        // Phase 1: serial probe — deterministic accounting + dedup.
        let mut scheduled: HashSet<Key> = HashSet::new();
        let mut work: Vec<(Key, Req)> = Vec::new();
        {
            let mut inner = self.lock();
            for (request, key) in requests.iter().zip(&keys) {
                inner.stats.requests += 1;
                if let Some((_, level)) = get(&mut inner.cache, key) {
                    match level {
                        HitLevel::Memory => inner.stats.memory_hits += 1,
                        HitLevel::Disk => inner.stats.disk_hits += 1,
                    }
                } else if scheduled.contains(key) {
                    inner.stats.coalesced += 1;
                } else {
                    inner.stats.misses += 1;
                    scheduled.insert(*key);
                    work.push((*key, request.clone()));
                }
            }
        }

        // Phase 2: parallel execute — pure pricing, no locks held.
        let (computed, shard_stats) = run_sharded(self.jobs, &work, |(_, req)| compute(req));

        // Phase 3: commit in work order, then assemble in request order.
        let mut inner = self.lock();
        inner.shards.extend(shard_stats);
        for ((key, _), value) in work.iter().zip(&computed) {
            put(&mut inner.cache, *key, value);
        }
        keys.iter()
            .map(|key| {
                get(&mut inner.cache, key)
                    .expect("every key resolved by probe or commit")
                    .0
            })
            .collect()
    }
}

impl CycleSource for SweepEngine {
    fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<SolveSummary>> {
        self.batch(
            requests,
            solve_key,
            SweepCache::get_solve,
            |cache, key, value| cache.put_solve(key, value),
            |request| {
                Ok(SolveSummary::from(&solve_cycles(
                    &request.platform,
                    request.horizon,
                )?))
            },
        )
    }

    fn kernel_batch(&self, requests: &[KernelRequest]) -> Vec<u64> {
        self.batch(
            requests,
            kernel_key,
            SweepCache::get_kernel,
            |cache, key, value| cache.put_kernel(key, *value),
            |r| standalone_kernel(&r.platform, r.shape, r.residency, r.i, r.k),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_dse::experiments::{KernelShape, Residency, SerialSource};
    use soc_dse::platform::Platform;

    fn kernel_requests() -> Vec<KernelRequest> {
        let rocket = Platform::rocket_eigen();
        [(4, 4), (8, 4), (4, 4), (8, 8)] // note the duplicate
            .into_iter()
            .map(|(i, k)| KernelRequest {
                platform: rocket.clone(),
                shape: KernelShape::Gemv,
                residency: Residency::Cold,
                i,
                k,
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_source_bit_for_bit() {
        let requests = kernel_requests();
        let reference = SerialSource.kernel_batch(&requests);
        for jobs in [1, 4, 16] {
            let engine = SweepEngine::in_memory(jobs);
            assert_eq!(engine.kernel_batch(&requests), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn probe_accounting_is_deterministic_across_jobs() {
        let requests = kernel_requests();
        let mut all_stats = Vec::new();
        for jobs in [1, 4, 16] {
            let engine = SweepEngine::in_memory(jobs);
            engine.kernel_batch(&requests);
            all_stats.push(engine.stats());
        }
        assert!(all_stats.windows(2).all(|w| w[0] == w[1]));
        let stats = all_stats[0];
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.misses, 3, "3 unique keys");
        assert_eq!(stats.coalesced, 1, "the duplicate folds in-batch");
    }

    #[test]
    fn second_batch_is_all_memory_hits() {
        let requests = kernel_requests();
        let engine = SweepEngine::in_memory(2);
        let first = engine.kernel_batch(&requests);
        engine.reset_stats();
        let second = engine.kernel_batch(&requests);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.memory_hits, 4);
        assert!((stats.hit_rate_percent() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn solve_batch_matches_serial_and_warms() {
        let requests = vec![SolveRequest {
            platform: Platform::rocket_eigen(),
            horizon: 6,
        }];
        let reference = SerialSource.solve_batch(&requests);
        let engine = SweepEngine::in_memory(4);
        assert_eq!(engine.solve_batch(&requests), reference);
        assert_eq!(engine.solve_batch(&requests), reference);
        let stats = engine.stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let dir = std::env::temp_dir().join(format!("soc-sweep-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let requests = kernel_requests();

        let cold = SweepEngine::with_cache_dir(3, &dir).unwrap();
        let first = cold.kernel_batch(&requests);
        assert_eq!(cold.stats().misses, 3);

        let warm = SweepEngine::with_cache_dir(3, &dir).unwrap();
        let second = warm.kernel_batch(&requests);
        assert_eq!(first, second);
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "zero regenerations on a warm disk");
        assert_eq!(stats.disk_hits, 3);
        assert_eq!(
            stats.memory_hits, 1,
            "the duplicate hits the promoted entry"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_render_line_is_stable() {
        let stats = EngineStats {
            requests: 4,
            memory_hits: 1,
            disk_hits: 0,
            coalesced: 1,
            misses: 2,
        };
        assert_eq!(
            stats.render_line(),
            "cache: 4 requests, 2 hits (1 memory, 0 disk, 1 coalesced), 2 misses, hit rate 50.0%"
        );
        assert_eq!(EngineStats::default().hit_rate_percent(), 0.0);
    }
}
