//! The sweep engine: a parallel, memoized [`CycleSource`].
//!
//! Every batch runs in three phases:
//!
//! 1. **Probe** (serial, under the cache lock): each request is keyed
//!    and looked up. Hits are counted per tier; the *first* occurrence
//!    of each missing key becomes a work item, later duplicates are
//!    coalesced onto it. Because this phase is serial and in request
//!    order, the hit/miss/coalesced accounting is identical for every
//!    `--jobs` value.
//! 2. **Execute** (parallel, lock-free): the deduplicated work items are
//!    priced on the shard pool with per-item panic isolation — a
//!    panicking item is retried under the engine's [`RetryPolicy`], and
//!    only an exhausted budget surfaces as a failure slot. Pricing is a
//!    pure function of the request, so scheduling cannot change any
//!    result.
//! 3. **Commit + assemble** (serial): successful results are inserted
//!    into the cache in work-item order, failures are held aside, then
//!    every request — hit, miss, or failure — is answered in request
//!    order. Failed items answer with
//!    [`tinympc::Error::ShardFailed`] instead of aborting the batch.
//!
//! The result: bit-identical answers to [`SerialSource`] for any thread
//! count, with deterministic cache statistics and nondeterministic
//! timing confined to [`ShardStats`].
//!
//! Failure containment is layered: the shard pool isolates panics, the
//! engine's mutex recovers from poisoning (`PoisonError::into_inner` —
//! batch state is re-validated on every commit, so a lock abandoned
//! mid-panic cannot brick the process-wide engine), and the disk cache
//! quarantines and heals corrupt entries (see [`crate::cache`]).
//!
//! [`SerialSource`]: soc_dse::experiments::SerialSource

use crate::cache::{HitLevel, SweepCache};
use crate::key::{bounds_key, kernel_key, solve_key, Key};
use crate::pool::{run_sharded_isolated, RetryPolicy, ShardFailure, ShardStats};
use soc_dse::experiments::{
    solve_scenario_summary, standalone_kernel, CycleSource, KernelRequest, SolveRequest,
    SolveSummary,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic cache accounting for an engine (or one pass of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total requests submitted.
    pub requests: usize,
    /// Requests answered from the in-memory tier.
    pub memory_hits: usize,
    /// Requests answered from the on-disk tier.
    pub disk_hits: usize,
    /// Duplicate in-batch requests folded onto an in-flight work item.
    pub coalesced: usize,
    /// Requests that forced a regeneration (trace + simulation).
    pub misses: usize,
}

impl EngineStats {
    /// Requests that did *not* regenerate anything.
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits + self.coalesced
    }

    /// Hit fraction in percent; an empty engine reports 0%.
    pub fn hit_rate_percent(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            100.0 * self.hits() as f64 / self.requests as f64
        }
    }

    /// One-line deterministic rendering for reports.
    pub fn render_line(&self) -> String {
        format!(
            "cache: {} requests, {} hits ({} memory, {} disk, {} coalesced), {} misses, hit rate {:.1}%",
            self.requests,
            self.hits(),
            self.memory_hits,
            self.disk_hits,
            self.coalesced,
            self.misses,
            self.hit_rate_percent()
        )
    }
}

/// Fault-recovery accounting for an engine: what the isolation layers
/// absorbed. Retry and watchdog counts come from the shard pool;
/// `failed_items` counts work items that exhausted their retry budget
/// and surfaced as [`tinympc::Error::ShardFailed`].
///
/// Reported to stderr (never into a golden-checked report body): under
/// chaos injection the *values* are seed-deterministic, but a clean run
/// keeps this struct all-zero and silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Extra attempts spent re-running panicked items (recoveries).
    pub retries: usize,
    /// Items whose successful computation overran the per-item deadline.
    pub watchdog_trips: usize,
    /// Items that failed every attempt of their budget.
    pub failed_items: usize,
    /// Lock-poisoning events the engine recovered from.
    pub poison_recoveries: usize,
}

impl FaultStats {
    /// True when every counter is zero (nothing to report).
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    /// One-line rendering for stderr.
    pub fn render_line(&self) -> String {
        format!(
            "faults: {} retries, {} failed items, {} watchdog trips, {} poison recoveries",
            self.retries, self.failed_items, self.watchdog_trips, self.poison_recoveries
        )
    }
}

/// Context handed to a [`ChaosHook`] before every work-item attempt.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCtx {
    /// Batch ordinal within the engine (0 for the first batch
    /// submitted, incrementing per batch — deterministic, since batches
    /// are submitted serially).
    pub batch: u64,
    /// Work-item index within the batch's deduplicated work list.
    pub item: usize,
    /// Attempt number, starting at 1.
    pub attempt: u32,
}

/// What an injected platform-level fault does to one attempt.
#[derive(Debug, Clone)]
pub enum ChaosAction {
    /// Panic with this message (exercises the pool's isolation/retry).
    Panic(String),
    /// Sleep this long before computing (exercises the watchdog).
    Delay(Duration),
}

/// Deterministic fault-injection hook consulted before every work-item
/// attempt. Keyed only on [`ChaosCtx`] — batch ordinal, item index and
/// attempt are all scheduling-independent, so an injected campaign
/// produces identical results for every `--jobs` value.
pub type ChaosHook = Arc<dyn Fn(&ChaosCtx) -> Option<ChaosAction> + Send + Sync>;

struct Inner {
    cache: SweepCache,
    stats: EngineStats,
    shards: Vec<ShardStats>,
    failed_items: usize,
    poison_recoveries: usize,
}

/// Parallel, memoized batch oracle for solve and kernel cycle counts.
pub struct SweepEngine {
    jobs: usize,
    retry: RetryPolicy,
    chaos: Option<ChaosHook>,
    batch_ordinal: AtomicU64,
    inner: Mutex<Inner>,
}

impl SweepEngine {
    /// Engine over an explicit cache with a `jobs`-wide shard pool.
    pub fn new(jobs: usize, cache: SweepCache) -> Self {
        SweepEngine {
            jobs: jobs.max(1),
            retry: RetryPolicy::default(),
            chaos: None,
            batch_ordinal: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                cache,
                stats: EngineStats::default(),
                shards: Vec::new(),
                failed_items: 0,
                poison_recoveries: 0,
            }),
        }
    }

    /// Engine with a memory-only cache (the `--no-cache` mode).
    pub fn in_memory(jobs: usize) -> Self {
        Self::new(jobs, SweepCache::in_memory())
    }

    /// Engine backed by an on-disk cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_cache_dir(
        jobs: usize,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        Ok(Self::new(jobs, SweepCache::with_dir(dir)?))
    }

    /// Replaces the retry/watchdog policy (builder style, before the
    /// engine is shared).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection hook (builder style,
    /// before the engine is shared). Used by chaos campaigns; `None` in
    /// production.
    pub fn with_chaos(mut self, hook: ChaosHook) -> Self {
        self.chaos = Some(hook);
        self
    }

    /// Shard-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Snapshot of the deterministic cache accounting.
    pub fn stats(&self) -> EngineStats {
        self.lock().stats
    }

    /// Per-shard timing collected so far (nondeterministic; report to
    /// stderr, never into a golden-checked report body).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.lock().shards.clone()
    }

    /// Fault-recovery accounting: retries, exhausted items, watchdog
    /// trips and lock-poison recoveries absorbed so far.
    pub fn fault_stats(&self) -> FaultStats {
        let inner = self.lock();
        let totals = ShardStats::total(&inner.shards);
        FaultStats {
            retries: totals.retries,
            watchdog_trips: totals.watchdog_trips,
            failed_items: inner.failed_items,
            poison_recoveries: inner.poison_recoveries,
        }
    }

    /// Clears accounting (but not cached results) — used between the
    /// cold and warm passes of `dse sweep --warm`.
    pub fn reset_stats(&self) {
        let mut inner = self.lock();
        inner.stats = EngineStats::default();
        inner.shards.clear();
        inner.failed_items = 0;
    }

    /// On-disk entries that were corrupt (torn writes, foreign bytes,
    /// checksum mismatches) and therefore quarantined and regenerated
    /// since the engine was opened. Nondeterministic across machines —
    /// report to stderr, never into a golden-checked body.
    pub fn corrupt_entries(&self) -> usize {
        self.lock().cache.corrupt_entries()
    }

    /// Where corrupt disk entries are moved ([`crate::cache::QUARANTINE_DIR`]
    /// under the cache directory), when a disk tier is attached.
    pub fn quarantine_dir(&self) -> Option<std::path::PathBuf> {
        self.lock().cache.quarantine_dir()
    }

    /// Deliberately poisons the engine's internal mutex — a chaos /
    /// testing hook proving that one panicked batch cannot brick the
    /// process-wide engine. The next `lock()` recovers the inner state
    /// via [`std::sync::PoisonError::into_inner`] and counts the event in
    /// [`FaultStats::poison_recoveries`].
    pub fn poison_for_chaos(&self) {
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = self.inner.lock();
                    panic!("chaos: deliberate lock poisoning");
                })
                .join()
        });
    }

    /// Analytical `[lo, hi]` solve-cycle bounds for each request, memoized
    /// under the `solve-bounds` cache kind. Runs the `soc-bounds` abstract
    /// interpreter twice per miss (once per interval side) instead of the
    /// trace simulator; results never alias trace-priced totals.
    pub fn bounds_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<(u64, u64)>> {
        self.batch(
            requests,
            bounds_key,
            SweepCache::get_bounds,
            |cache, key, value| cache.put_bounds(key, value),
            |r| {
                soc_bounds::solve_bounds_scenario(&r.platform, &r.scenario, r.horizon)
                    .map(|i| (i.lo, i.hi))
            },
            |failure| Err(shard_failed(failure)),
        )
    }

    /// Locks the engine state, recovering from a poisoned mutex. The
    /// inner state is only ever mutated in short, self-contained
    /// critical sections (probe accounting, cache commit), each of
    /// which leaves it consistent even when a panic unwinds through a
    /// user-supplied closure — so abandoning the poison flag is sound,
    /// and strictly better than bricking every future batch.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.poison_recoveries += 1;
                self.inner.clear_poison();
                guard
            }
        }
    }

    /// The three-phase batch described in the module docs, generic over
    /// the work kinds. `on_fail` converts an exhausted-retry
    /// [`ShardFailure`] into the value domain (an `Err` slot for solve
    /// and bounds work; a panic for kernel work, whose `u64` channel
    /// has no error representation).
    fn batch<Req, V>(
        &self,
        requests: &[Req],
        key_of: impl Fn(&Req) -> Key,
        get: impl Fn(&mut SweepCache, &Key) -> Option<(V, HitLevel)>,
        put: impl Fn(&mut SweepCache, Key, &V),
        compute: impl Fn(&Req) -> V + Sync,
        on_fail: impl Fn(&ShardFailure) -> V,
    ) -> Vec<V>
    where
        Req: Clone + Sync,
        V: Clone + Send + Sync,
    {
        let keys: Vec<Key> = requests.iter().map(&key_of).collect();
        let batch = self.batch_ordinal.fetch_add(1, Ordering::Relaxed);

        // Phase 1: serial probe — deterministic accounting + dedup.
        let mut scheduled: HashSet<Key> = HashSet::new();
        let mut work: Vec<(Key, Req)> = Vec::new();
        {
            let mut inner = self.lock();
            for (request, key) in requests.iter().zip(&keys) {
                inner.stats.requests += 1;
                if let Some((_, level)) = get(&mut inner.cache, key) {
                    match level {
                        HitLevel::Memory => inner.stats.memory_hits += 1,
                        HitLevel::Disk => inner.stats.disk_hits += 1,
                    }
                } else if scheduled.contains(key) {
                    inner.stats.coalesced += 1;
                } else {
                    inner.stats.misses += 1;
                    scheduled.insert(*key);
                    work.push((*key, request.clone()));
                }
            }
        }

        // Phase 2: parallel execute — pure pricing, no locks held, every
        // attempt under panic isolation (plus chaos injection when a
        // campaign installed a hook).
        let chaos = self.chaos.clone();
        let (computed, shard_stats) =
            run_sharded_isolated(self.jobs, &work, self.retry, |item, attempt, (_, req)| {
                if let Some(hook) = &chaos {
                    match hook(&ChaosCtx {
                        batch,
                        item,
                        attempt,
                    }) {
                        Some(ChaosAction::Panic(msg)) => panic!("{msg}"),
                        Some(ChaosAction::Delay(delay)) => std::thread::sleep(delay),
                        None => {}
                    }
                }
                compute(req)
            });

        // Phase 3: commit successes in work order (failures held aside,
        // never cached — a later batch retries them from scratch), then
        // assemble in request order.
        let mut inner = self.lock();
        inner.shards.extend(shard_stats);
        let mut failed: HashMap<Key, ShardFailure> = HashMap::new();
        for ((key, _), outcome) in work.iter().zip(&computed) {
            match outcome {
                Ok(value) => put(&mut inner.cache, *key, value),
                Err(failure) => {
                    inner.failed_items += 1;
                    failed.insert(*key, failure.clone());
                }
            }
        }
        keys.iter()
            .map(|key| {
                if let Some((value, _)) = get(&mut inner.cache, key) {
                    value
                } else {
                    on_fail(
                        failed
                            .get(key)
                            .expect("every key resolved by probe, commit, or failure"),
                    )
                }
            })
            .collect()
    }
}

/// Maps a pool-level failure into the typed error taxonomy.
fn shard_failed(failure: &ShardFailure) -> tinympc::Error {
    tinympc::Error::ShardFailed {
        item: failure.item,
        attempts: failure.attempts,
        payload: failure.payload.clone(),
    }
}

impl CycleSource for SweepEngine {
    fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<tinympc::Result<SolveSummary>> {
        self.batch(
            requests,
            solve_key,
            SweepCache::get_solve,
            |cache, key, value| cache.put_solve(key, value),
            |request| solve_scenario_summary(&request.platform, &request.scenario, request.horizon),
            |failure| Err(shard_failed(failure)),
        )
    }

    fn kernel_batch(&self, requests: &[KernelRequest]) -> Vec<u64> {
        self.batch(
            requests,
            kernel_key,
            SweepCache::get_kernel,
            |cache, key, value| cache.put_kernel(key, *value),
            |r| standalone_kernel(&r.platform, r.shape, r.residency, r.i, r.k),
            // The `u64` kernel channel has no error representation;
            // exhausting the budget here re-raises (still after the
            // rest of the batch completed).
            |failure| {
                panic!(
                    "standalone-kernel work item {} failed after {} attempt(s): {}",
                    failure.item, failure.attempts, failure.payload
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_dse::experiments::{KernelShape, Residency, SerialSource};
    use soc_dse::platform::Platform;

    fn kernel_requests() -> Vec<KernelRequest> {
        let rocket = Platform::rocket_eigen();
        [(4, 4), (8, 4), (4, 4), (8, 8)] // note the duplicate
            .into_iter()
            .map(|(i, k)| KernelRequest {
                platform: rocket.clone(),
                shape: KernelShape::Gemv,
                residency: Residency::Cold,
                i,
                k,
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_source_bit_for_bit() {
        let requests = kernel_requests();
        let reference = SerialSource.kernel_batch(&requests);
        for jobs in [1, 4, 16] {
            let engine = SweepEngine::in_memory(jobs);
            assert_eq!(engine.kernel_batch(&requests), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn probe_accounting_is_deterministic_across_jobs() {
        let requests = kernel_requests();
        let mut all_stats = Vec::new();
        for jobs in [1, 4, 16] {
            let engine = SweepEngine::in_memory(jobs);
            engine.kernel_batch(&requests);
            all_stats.push(engine.stats());
        }
        assert!(all_stats.windows(2).all(|w| w[0] == w[1]));
        let stats = all_stats[0];
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.misses, 3, "3 unique keys");
        assert_eq!(stats.coalesced, 1, "the duplicate folds in-batch");
    }

    #[test]
    fn second_batch_is_all_memory_hits() {
        let requests = kernel_requests();
        let engine = SweepEngine::in_memory(2);
        let first = engine.kernel_batch(&requests);
        engine.reset_stats();
        let second = engine.kernel_batch(&requests);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.memory_hits, 4);
        assert!((stats.hit_rate_percent() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn solve_batch_matches_serial_and_warms() {
        let requests = vec![SolveRequest::hover(Platform::rocket_eigen(), 6)];
        let reference = SerialSource.solve_batch(&requests);
        let engine = SweepEngine::in_memory(4);
        assert_eq!(engine.solve_batch(&requests), reference);
        assert_eq!(engine.solve_batch(&requests), reference);
        let stats = engine.stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let dir = std::env::temp_dir().join(format!("soc-sweep-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let requests = kernel_requests();

        let cold = SweepEngine::with_cache_dir(3, &dir).unwrap();
        let first = cold.kernel_batch(&requests);
        assert_eq!(cold.stats().misses, 3);

        let warm = SweepEngine::with_cache_dir(3, &dir).unwrap();
        let second = warm.kernel_batch(&requests);
        assert_eq!(first, second);
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "zero regenerations on a warm disk");
        assert_eq!(stats.disk_hits, 3);
        assert_eq!(
            stats.memory_hits, 1,
            "the duplicate hits the promoted entry"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_render_line_is_stable() {
        let stats = EngineStats {
            requests: 4,
            memory_hits: 1,
            disk_hits: 0,
            coalesced: 1,
            misses: 2,
        };
        assert_eq!(
            stats.render_line(),
            "cache: 4 requests, 2 hits (1 memory, 0 disk, 1 coalesced), 2 misses, hit rate 50.0%"
        );
        assert_eq!(EngineStats::default().hit_rate_percent(), 0.0);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_fatal() {
        let requests = kernel_requests();
        let engine = SweepEngine::in_memory(2);
        let reference = engine.kernel_batch(&requests);
        engine.poison_for_chaos();
        // The engine keeps serving — from the (recovered) memory tier.
        engine.reset_stats();
        assert_eq!(engine.kernel_batch(&requests), reference);
        assert_eq!(engine.stats().misses, 0, "state survived the poisoning");
        let faults = engine.fault_stats();
        assert!(faults.poison_recoveries >= 1, "{faults:?}");
    }

    #[test]
    fn chaos_panic_on_first_attempt_is_recovered() {
        let requests = kernel_requests();
        let reference = SerialSource.kernel_batch(&requests);
        for jobs in [1, 4] {
            let hook: ChaosHook = Arc::new(|ctx: &ChaosCtx| {
                (ctx.item == 1 && ctx.attempt == 1)
                    .then(|| ChaosAction::Panic("chaos: injected worker panic".into()))
            });
            let engine = SweepEngine::in_memory(jobs).with_chaos(hook);
            assert_eq!(engine.kernel_batch(&requests), reference, "jobs={jobs}");
            let faults = engine.fault_stats();
            assert_eq!(faults.retries, 1, "jobs={jobs}");
            assert_eq!(faults.failed_items, 0);
        }
    }

    #[test]
    fn exhausted_solve_item_surfaces_shard_failed_and_spares_the_rest() {
        let requests = vec![
            SolveRequest::hover(Platform::rocket_eigen(), 6),
            SolveRequest::hover(Platform::rocket_eigen(), 7),
        ];
        let hook: ChaosHook = Arc::new(|ctx: &ChaosCtx| {
            (ctx.item == 1).then(|| ChaosAction::Panic("chaos: persistent fault".into()))
        });
        let engine = SweepEngine::in_memory(2).with_chaos(hook);
        let results = engine.solve_batch(&requests);
        assert!(results[0].is_ok(), "unfaulted item unaffected");
        match &results[1] {
            Err(tinympc::Error::ShardFailed {
                item,
                attempts,
                payload,
            }) => {
                assert_eq!(*item, 1);
                assert_eq!(*attempts, RetryPolicy::default().max_attempts);
                assert!(payload.contains("persistent fault"));
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        assert_eq!(engine.fault_stats().failed_items, 1);

        // Failures are never cached: a fresh batch without the fault
        // recomputes and succeeds.
        let healed = SweepEngine::in_memory(2);
        assert!(healed.solve_batch(&requests).iter().all(|r| r.is_ok()));
    }

    #[test]
    fn fault_stats_render_and_reset() {
        let stats = FaultStats {
            retries: 2,
            watchdog_trips: 1,
            failed_items: 3,
            poison_recoveries: 0,
        };
        assert_eq!(
            stats.render_line(),
            "faults: 2 retries, 3 failed items, 1 watchdog trips, 0 poison recoveries"
        );
        assert!(FaultStats::default().is_clean());
        assert!(!stats.is_clean());
    }
}
