//! Declarative sweep specifications: which design points to price.

use soc_cpu::CoreConfig;
use soc_dse::experiments::{KernelShape, Residency, Scenario};
use soc_dse::platform::Platform;
use soc_dse::workloads;
use soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_vector::SaturnConfig;

/// One standalone-kernel speedup grid in a sweep.
#[derive(Debug, Clone)]
pub struct HeatmapSpec {
    /// Section title in the report.
    pub title: String,
    /// Platform on top of the speedup ratio.
    pub numerator: Platform,
    /// Platform under the speedup ratio.
    pub denominator: Platform,
    /// GEMV or GEMM.
    pub shape: KernelShape,
    /// Cold (one-shot) or warm (steady-state) operands.
    pub residency: Residency,
    /// Matrix heights (rows of the grid).
    pub heights: Vec<usize>,
    /// Matrix widths (columns of the grid).
    pub widths: Vec<usize>,
}

impl HeatmapSpec {
    /// Kernel pricings this grid submits (two platforms per cell).
    pub fn work_items(&self) -> usize {
        2 * self.heights.len() * self.widths.len()
    }
}

/// A declarative sweep: a platform grid × horizons for end-to-end
/// solves of one scenario, plus standalone-kernel speedup grids.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Name shown in the report header.
    pub label: String,
    /// Workload every platform solves ([`Scenario::hover`] is the
    /// paper-compatible default).
    pub scenario: Scenario,
    /// MPC horizons to price every platform at.
    pub horizons: Vec<usize>,
    /// End-to-end solve platforms.
    pub platforms: Vec<Platform>,
    /// Standalone-kernel grids.
    pub heatmaps: Vec<HeatmapSpec>,
}

impl SweepSpec {
    /// The paper's full Table-I sweep — every registry platform at the
    /// paper's horizon — plus the headline Saturn-vs-Gemmini GEMV grid.
    pub fn full() -> Self {
        let heights = workloads::heatmap_heights();
        let widths = workloads::heatmap_widths();
        SweepSpec {
            label: "table1".to_string(),
            scenario: Scenario::hover(),
            horizons: vec![10],
            platforms: Platform::table1_registry(),
            heatmaps: vec![HeatmapSpec {
                title: "GEMV speedup: Saturn V512D512 over Gemmini OS 4x4 32KB (cold)".to_string(),
                numerator: Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d512()),
                denominator: Platform::gemmini(
                    CoreConfig::rocket(),
                    GemminiConfig::os_4x4_32kb(),
                    GemminiOpts::optimized(),
                ),
                shape: KernelShape::Gemv,
                residency: Residency::Cold,
                heights: heights[..4].to_vec(),
                widths: widths[..4].to_vec(),
            }],
        }
    }

    /// A seconds-scale subset for CI and the golden/determinism tests:
    /// one platform per back-end family, a short horizon, a 2×2 grid.
    pub fn smoke() -> Self {
        SweepSpec {
            label: "smoke".to_string(),
            scenario: Scenario::hover(),
            horizons: vec![8],
            platforms: vec![
                Platform::rocket_eigen(),
                Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
                Platform::gemmini(
                    CoreConfig::rocket(),
                    GemminiConfig::os_4x4_32kb(),
                    GemminiOpts::optimized(),
                ),
            ],
            heatmaps: vec![HeatmapSpec {
                title: "GEMV speedup: Saturn V512D256 over Rocket (cold)".to_string(),
                numerator: Platform::saturn(CoreConfig::shuttle(), SaturnConfig::v512d256()),
                denominator: Platform::rocket_eigen(),
                shape: KernelShape::Gemv,
                residency: Residency::Cold,
                heights: vec![4, 8],
                widths: vec![4, 8],
            }],
        }
    }

    /// Re-targets the sweep at a different scenario (builder style):
    /// the same platform grid and heatmaps, solving another workload.
    #[must_use]
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Total work items (solves + kernel pricings) before deduplication.
    pub fn work_items(&self) -> usize {
        self.horizons.len() * self.platforms.len()
            + self
                .heatmaps
                .iter()
                .map(HeatmapSpec::work_items)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_covers_the_table1_registry() {
        let spec = SweepSpec::full();
        assert_eq!(spec.platforms.len(), Platform::table1_registry().len());
        assert_eq!(spec.work_items(), 13 + 32);
    }

    #[test]
    fn smoke_spec_is_small() {
        let spec = SweepSpec::smoke();
        assert_eq!(spec.work_items(), 3 + 8);
        assert!(spec.work_items() < 20, "smoke must stay seconds-scale");
    }

    #[test]
    fn default_specs_solve_hover() {
        assert_eq!(SweepSpec::full().scenario, Scenario::hover());
        assert_eq!(SweepSpec::smoke().scenario, Scenario::hover());
        let retargeted = SweepSpec::smoke().with_scenario(Scenario::figure8());
        assert_eq!(retargeted.scenario, Scenario::figure8());
        assert_eq!(retargeted.work_items(), 3 + 8, "grid shape unchanged");
    }
}
