//! Quickstart: solve one MPC problem and price it on two SoC designs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use soc_dse_repro::soc_dse::experiments::solve_cycles;
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's flagship workload: a Crazyflie-class quadrotor
    //    (12 states, 4 inputs) stabilizing to hover with a 10-step horizon.
    let problem = problems::quadrotor_hover::<f64>(10)?;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;

    // 2. Solve it functionally (no hardware timing) from a 20 cm offset.
    let x0 = solver.problem().hover_offset_state(0.2);
    let result = solver.solve(&x0, &mut NullExecutor)?;
    println!(
        "ADMM converged = {} in {} iterations; first control input = {:?}",
        result.converged, result.iterations, result.u0
    );
    println!(
        "residuals (primal/dual state, primal/dual input): {:?}",
        result.residuals
    );

    // 3. Price the same solve on two hardware design points.
    for platform in [
        Platform::rocket_eigen(),
        Platform::table1_registry().remove(6),
    ] {
        let outcome = solve_cycles(&platform, 10)?;
        println!(
            "{:<24} {:>8} cycles/solve  -> {:>6.0} MPC Hz at 1 GHz  (area {:.3} mm^2)",
            platform.name,
            outcome.result.total_cycles,
            1.0e9 / outcome.result.total_cycles as f64,
            platform.area().total_mm2(),
        );
    }
    Ok(())
}
