//! Quickstart: solve one MPC problem and price it on two SoC designs.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use std::time::Instant;

use soc_dse_repro::soc_dse::experiments::solve_cycles;
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's flagship workload: a Crazyflie-class quadrotor
    //    (12 states, 4 inputs) stabilizing to hover with a 10-step horizon.
    let problem = problems::quadrotor_hover::<f64>(10)?;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;
    println!(
        "solver specialization: {:?} (dims-specialized hot path)",
        solver.specialization()
    );

    // 2. Solve it in place (no hardware timing) from a 20 cm offset. The
    //    iterates live in the solver's arena workspace; `u0()` reads the
    //    applied input straight out of it.
    let x0 = solver.problem().hover_offset_state(0.2);
    let status = solver.solve_in_place(x0.as_slice(), &mut NullExecutor)?;
    println!(
        "ADMM converged = {} in {} iterations; first control input = {:?}",
        status.converged,
        status.iterations,
        solver.u0()
    );
    println!(
        "residuals (primal/dual state, primal/dual input): {:?}",
        status.residuals
    );

    // 3. Warm solves reuse the arena with zero heap allocations — time
    //    them on this host for scale.
    let reps = 200u32;
    let start = Instant::now();
    for _ in 0..reps {
        solver.solve_in_place(x0.as_slice(), &mut NullExecutor)?;
    }
    let warm_ns = start.elapsed().as_nanos() / reps as u128;
    println!("warm solve_in_place: {warm_ns} ns/solve on this host (0 allocations)\n");

    // 4. Price the same solve on two hardware design points: simulated
    //    cycles per solve next to the host-side wall clock of the priced
    //    solve (the executor memoizes per-kernel costs, so a warm priced
    //    solve costs about the same as a functional one).
    for platform in [
        Platform::rocket_eigen(),
        Platform::table1_registry().remove(6),
    ] {
        let outcome = solve_cycles(&platform, 10)?;
        let mut priced = AdmmSolver::new(
            problems::quadrotor_hover::<f64>(10)?,
            SolverSettings::default(),
        )?;
        let mut executor = platform.executor();
        priced.solve_in_place(x0.as_slice(), executor.as_mut())?;
        let start = Instant::now();
        for _ in 0..reps {
            priced.solve_in_place(x0.as_slice(), executor.as_mut())?;
        }
        let host_ns = start.elapsed().as_nanos() / reps as u128;
        println!(
            "{:<24} {:>8} cycles/solve  -> {:>6.0} MPC Hz at 1 GHz  (area {:.3} mm^2; host {host_ns} ns/solve)",
            platform.name,
            outcome.result.total_cycles,
            1.0e9 / outcome.result.total_cycles as f64,
            platform.area().total_mm2(),
        );
    }
    Ok(())
}
