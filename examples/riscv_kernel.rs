//! ISA-level ground truth: write a GEMV in real RV32F assembly, execute it
//! on the functional RISC-V machine, check it against `matlib`, and price
//! the *actual executed instruction stream* on every scalar core model.
//!
//! ```sh
//! cargo run --example riscv_kernel
//! ```

use soc_dse_repro::matlib::{Matrix, Vector};
use soc_dse_repro::soc_cpu::{simulate_scalar, CoreConfig};
use soc_dse_repro::soc_isa::disassemble;
use soc_dse_repro::soc_riscv::{assemble, trace_from_execution, Machine};

const GEMV_ASM: &str = r#"
    li   t0, 0            # i
row:
    bge  t0, a3, done
    fmv.w.x ft0, zero     # acc = 0
    li   t1, 0            # j
    mul  t4, t0, a4
    slli t4, t4, 2
    add  t2, a0, t4       # &A[i][0]
    mv   t3, a1           # &x[0]
col:
    bge  t1, a4, rowend
    flw  ft1, (t2)
    flw  ft2, (t3)
    fmadd.s ft0, ft1, ft2, ft0
    addi t2, t2, 4
    addi t3, t3, 4
    addi t1, t1, 1
    j    col
rowend:
    slli t5, t0, 2
    add  t6, a2, t5
    fsw  ft0, (t6)
    addi t0, t0, 1
    j    row
done:
    ecall
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, k) = (12usize, 12usize);
    let a = Matrix::<f32>::from_fn(m, k, |r, c| ((r * 3 + c) % 7) as f32 * 0.3 - 0.9);
    let x = Vector::<f32>::from_fn(k, |i| (i % 5) as f32 * 0.4 - 0.8);
    let expected = a.matvec(&x)?;

    let prog = assemble(GEMV_ASM)?;
    let mut machine = Machine::new(64 * 1024);
    machine.record_trace();
    machine.load_program(0, &prog);
    let (a_base, x_base, y_base) = (0x4000u32, 0x8000u32, 0xc000u32);
    for r in 0..m {
        for c in 0..k {
            machine.write_f32(a_base + ((r * k + c) * 4) as u32, a[(r, c)])?;
        }
    }
    for i in 0..k {
        machine.write_f32(x_base + (i * 4) as u32, x[i])?;
    }
    machine.set_x(10, a_base);
    machine.set_x(11, x_base);
    machine.set_x(12, y_base);
    machine.set_x(13, m as u32);
    machine.set_x(14, k as u32);
    let steps = machine.run(100_000)?;

    let mut worst = 0.0f32;
    for i in 0..m {
        worst = worst.max((machine.read_f32(y_base + (i * 4) as u32)? - expected[i]).abs());
    }
    println!("executed {steps} RV32IMF instructions; max |riscv - matlib| = {worst:.2e}");
    assert!(worst < 1e-5);

    let trace = trace_from_execution(machine.retired().expect("recording enabled"));
    println!(
        "\nfirst retired micro-ops:\n{}",
        disassemble(&trace)
            .lines()
            .take(8)
            .collect::<Vec<_>>()
            .join("\n")
    );

    println!("\npricing the executed stream on each scalar core:");
    for core in CoreConfig::all_cpus() {
        println!(
            "  {:<12} {:>6} cycles",
            core.name,
            simulate_scalar(&core, &trace)
        );
    }
    Ok(())
}
