//! Closed-loop quadrotor flight: track a figure-eight reference with
//! TinyMPC at 100 Hz, while accounting the controller's cycle budget on an
//! embedded SoC design point.
//!
//! ```sh
//! cargo run --example hover_quadrotor --release
//! ```
//!
//! This is the end-to-end scenario the paper's introduction motivates: a
//! micro-UAV whose control loop must fit the compute budget of an
//! embedded SoC. We simulate the plant with the same discrete dynamics the
//! controller uses, fly two loops of a lemniscate, and report tracking
//! error alongside the achievable control rate on the chosen platform.

use soc_dse_repro::matlib::Vector;
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_dse::workloads::figure8_reference;
use soc_dse_repro::tinympc::{problems, AdmmSolver, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 10;
    let dt = 0.01;
    let problem = problems::quadrotor_hover::<f32>(horizon)?;
    let a = problem.a.clone();
    let b = problem.b.clone();
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;

    // Price the controller on the paper's Pareto-optimal mid-range design.
    let platform = Platform::table1_registry()
        .into_iter()
        .find(|p| p.name == "OSGemminiRocket32KB")
        .expect("registry contains the Gemmini point");
    let mut executor = platform.executor();

    let steps = 1200; // 12 seconds: two laps of the figure-eight
    let mut x = solver.problem().hover_offset_state(0.0);
    let mut worst_cycles = 0u64;
    let mut sum_sq_err = 0.0f64;
    let mut max_err = 0.0f64;
    let mut last_termination = None;

    for step in 0..steps {
        let xref = figure8_reference::<f32>(12, horizon, step, dt);
        solver.set_reference(&xref)?;
        let status = solver.solve_in_place(x.as_slice(), executor.as_mut())?;
        worst_cycles = worst_cycles.max(status.total_cycles);
        last_termination = Some(status.termination);

        // Plant update with the applied (feasible) input.
        let u0 = Vector::from_slice(solver.u0());
        let ax = a.matvec(&x)?;
        let bu = b.matvec(&u0)?;
        x = ax.add(&bu)?;

        let ex = (x[0] - xref[0][0]) as f64;
        let ey = (x[1] - xref[0][1]) as f64;
        let err = (ex * ex + ey * ey).sqrt();
        sum_sq_err += err * err;
        max_err = max_err.max(err);

        if step % 200 == 0 {
            println!(
                "t={:5.2}s  pos=({:+.3},{:+.3},{:+.3})  ref=({:+.3},{:+.3})  err={:.3} m  {} iters ({})",
                step as f64 * dt,
                x[0],
                x[1],
                x[2],
                xref[0][0],
                xref[0][1],
                err,
                status.iterations,
                status.termination
            );
        }
    }

    let rms = (sum_sq_err / steps as f64).sqrt();
    println!(
        "\ntracking over {} s: RMS error {:.3} m, max error {:.3} m",
        steps as f64 * dt,
        rms,
        max_err
    );
    println!(
        "controller on {}: worst-case {} cycles/solve -> {:.0} Hz at 1 GHz (loop needs {:.0} Hz)",
        platform.name,
        worst_cycles,
        1.0e9 / worst_cycles as f64,
        1.0 / dt
    );
    if let Some(t) = last_termination {
        println!("last solve terminated: {t}");
    }
    assert!(rms < 0.25, "tracking diverged");
    Ok(())
}
