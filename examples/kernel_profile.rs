//! Kernel-level profiling: where do the cycles go on each back-end, and
//! which back-end wins each kernel class?
//!
//! ```sh
//! cargo run --example kernel_profile --release
//! ```

use soc_dse_repro::soc_cpu::CoreConfig;
use soc_dse_repro::soc_dse::experiments::{
    kernel_breakdown, standalone_kernel, KernelShape, Residency,
};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_dse_repro::soc_vector::SaturnConfig;
use soc_dse_repro::tinympc::KernelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rocket = Platform::rocket_eigen();
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );

    println!("Per-kernel cycles for one TinyMPC solve (quadrotor, N=10):\n");
    let br = kernel_breakdown(&rocket, 10)?;
    let bs = kernel_breakdown(&saturn, 10)?;
    let bg = kernel_breakdown(&gemmini, 10)?;
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "kernel", "Rocket", "Saturn", "Gemmini"
    );
    for k in KernelId::ALL {
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            k.to_string(),
            br.get(&k).copied().unwrap_or(0),
            bs.get(&k).copied().unwrap_or(0),
            bg.get(&k).copied().unwrap_or(0),
        );
    }

    println!("\nStandalone GEMV cycles (cold operands) across sizes:");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "I x K", "Rocket", "Saturn", "Gemmini"
    );
    for (i, k) in [(4usize, 12usize), (12, 12), (32, 32), (64, 64)] {
        println!(
            "{:<10} {:>10} {:>10} {:>10}",
            format!("{i}x{k}"),
            standalone_kernel(&rocket, KernelShape::Gemv, Residency::Cold, i, k),
            standalone_kernel(&saturn, KernelShape::Gemv, Residency::Cold, i, k),
            standalone_kernel(&gemmini, KernelShape::Gemv, Residency::Cold, i, k),
        );
    }
    println!("\nThe MPC-sized kernels (top rows) are where frontends, not PEs, decide\nthe outcome — the paper's central characterization result.");
    Ok(())
}
