//! Kernel-level profiling: where do the cycles go on each back-end, and
//! which back-end wins each kernel class?
//!
//! ```sh
//! cargo run --example kernel_profile --release
//! ```

use std::time::Instant;

use soc_dse_repro::matlib;
use soc_dse_repro::soc_cpu::CoreConfig;
use soc_dse_repro::soc_dse::experiments::{
    kernel_breakdown, standalone_kernel, KernelShape, Residency,
};
use soc_dse_repro::soc_dse::platform::Platform;
use soc_dse_repro::soc_gemmini::{GemminiConfig, GemminiOpts};
use soc_dse_repro::soc_vector::SaturnConfig;
use soc_dse_repro::tinympc::{problems, AdmmSolver, KernelId, NullExecutor, SolverSettings};

/// Wall-clock time of one `i`×`k` matlib GEMV on this host (warm data,
/// in-place kernel — the same code the solver's hot path runs).
fn host_gemv_ns(i: usize, k: usize) -> f64 {
    let a = matlib::Matrix::<f32>::from_fn(i, k, |r, c| 0.01 + 0.001 * (r * k + c) as f32);
    let x = matlib::Vector::<f32>::from_fn(k, |j| 0.5 - 0.01 * j as f32);
    let mut y = vec![0.0f32; i];
    for _ in 0..100 {
        matlib::gemv_into(&a, x.as_slice(), &mut y).unwrap();
    }
    let reps = 20_000u32;
    let start = Instant::now();
    for _ in 0..reps {
        matlib::gemv_into(&a, x.as_slice(), &mut y).unwrap();
        std::hint::black_box(&mut y);
    }
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rocket = Platform::rocket_eigen();
    let saturn = Platform::saturn(CoreConfig::rocket(), SaturnConfig::v512d256());
    let gemmini = Platform::gemmini(
        CoreConfig::rocket(),
        GemminiConfig::os_4x4_32kb(),
        GemminiOpts::optimized(),
    );

    println!("Per-kernel cycles for one TinyMPC solve (quadrotor, N=10):\n");
    let br = kernel_breakdown(&rocket, 10)?;
    let bs = kernel_breakdown(&saturn, 10)?;
    let bg = kernel_breakdown(&gemmini, 10)?;
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "kernel", "Rocket", "Saturn", "Gemmini"
    );
    for k in KernelId::ALL {
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            k.to_string(),
            br.get(&k).copied().unwrap_or(0),
            bs.get(&k).copied().unwrap_or(0),
            bg.get(&k).copied().unwrap_or(0),
        );
    }

    println!("\nStandalone GEMV: simulated cycles (cold operands) next to the host-side");
    println!("wall clock of the same matlib kernel (warm, in-place):");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "I x K", "Rocket", "Saturn", "Gemmini", "host ns"
    );
    for (i, k) in [(4usize, 12usize), (12, 12), (32, 32), (64, 64)] {
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>12.0}",
            format!("{i}x{k}"),
            standalone_kernel(&rocket, KernelShape::Gemv, Residency::Cold, i, k),
            standalone_kernel(&saturn, KernelShape::Gemv, Residency::Cold, i, k),
            standalone_kernel(&gemmini, KernelShape::Gemv, Residency::Cold, i, k),
            host_gemv_ns(i, k),
        );
    }

    // End-to-end host timing of the flattened hot path, next to the
    // simulated totals above: a warm in-place solve allocates nothing
    // and reads u0 straight from the arena workspace.
    let problem = problems::quadrotor_hover::<f32>(10)?;
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;
    let x0 = solver.problem().hover_offset_state(0.2);
    solver.solve_in_place(x0.as_slice(), &mut NullExecutor)?;
    let reps = 400u32;
    let start = Instant::now();
    for _ in 0..reps {
        solver.solve_in_place(x0.as_slice(), &mut NullExecutor)?;
    }
    let warm_ns = start.elapsed().as_nanos() / u128::from(reps);
    println!(
        "\nHost-side warm solve (quadrotor, {:?} specialization): {warm_ns} ns/solve, 0 allocations.",
        solver.specialization()
    );
    println!("\nThe MPC-sized kernels (top rows) are where frontends, not PEs, decide\nthe outcome — the paper's central characterization result.");
    Ok(())
}
