//! Design-space exploration in ten lines: sweep every Table-I platform,
//! print the area-vs-performance trade-off and the Pareto frontier.
//!
//! ```sh
//! cargo run --example design_space --release
//! ```

use soc_dse_repro::soc_dse::experiments::{pareto_frontier, table1};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = table1(10)?;
    rows.sort_by(|a, b| a.area_um2.total_cmp(&b.area_um2));
    let frontier = pareto_frontier(
        &rows
            .iter()
            .map(|r| (r.area_um2, r.cycles_per_solve as f64))
            .collect::<Vec<_>>(),
    );

    println!(
        "{:<24} {:>10} {:>14} {:>12}  Pareto",
        "configuration", "mm^2", "cycles/solve", "MPC Hz@1GHz"
    );
    for (r, on) in rows.iter().zip(frontier) {
        println!(
            "{:<24} {:>10.3} {:>14} {:>12.0}  {}",
            r.name,
            r.area_um2 / 1e6,
            r.cycles_per_solve,
            r.mpc_hz,
            if on { "*" } else { "" }
        );
    }
    println!("\n'*' marks the Pareto-optimal designs: the answer to \"which architecture\nshould my robot's SoC use\" depends on the area budget — exactly the\npaper's conclusion.");
    Ok(())
}
