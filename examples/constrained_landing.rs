//! Constraint-active MPC: a quadrotor descending from altitude with
//! saturated thrust — the scenario where the ADMM slack projection
//! actually earns its keep over plain LQR.
//!
//! ```sh
//! cargo run --example constrained_landing --release
//! ```

use soc_dse_repro::matlib::Vector;
use soc_dse_repro::tinympc::{problems, AdmmSolver, NullExecutor, SolverSettings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = problems::quadrotor_hover::<f64>(15)?;
    let a = problem.a.clone();
    let b = problem.b.clone();
    let kinf = {
        // For comparison: the unconstrained LQR law from the solver cache.
        let s = AdmmSolver::new(problem.clone(), SolverSettings::default())?;
        s.cache().kinf.clone()
    };
    let (u_min, u_max) = (problem.u_min, problem.u_max);
    let mut solver = AdmmSolver::new(problem, SolverSettings::default())?;

    // Start 2 m above the setpoint, descending fast.
    let mut x = Vector::zeros(12);
    x[2] = 2.0;
    x[8] = -1.5;
    let mut x_lqr = x.clone();

    let mut saturated_steps = 0usize;
    let mut lqr_violations = 0usize;
    let mut unconverged = 0usize;
    for step in 0..400 {
        let status = solver.solve_in_place(x.as_slice(), &mut NullExecutor)?;
        if status.termination != soc_dse_repro::tinympc::TerminationCause::Converged {
            unconverged += 1;
        }
        let u = &Vector::from_slice(solver.u0());
        if u.as_slice()
            .iter()
            .any(|&v| (v - u_min).abs() < 1e-6 || (v - u_max).abs() < 1e-6)
        {
            saturated_steps += 1;
        }
        let ax = a.matvec(&x)?;
        let bu = b.matvec(u)?;
        x = ax.add(&bu)?;

        // LQR baseline: the raw law violates the actuator limits and must
        // be clipped, losing optimality.
        let u_raw = kinf.matvec(&x_lqr)?.neg();
        if u_raw.as_slice().iter().any(|&v| v < u_min || v > u_max) {
            lqr_violations += 1;
        }
        let u_clipped = u_raw.clip(u_min, u_max);
        x_lqr = a.matvec(&x_lqr)?.add(&b.matvec(&u_clipped)?)?;

        if step % 80 == 0 {
            println!(
                "t={:4.2}s  MPC: z={:+.3} vz={:+.3} | clipped-LQR: z={:+.3} vz={:+.3}",
                step as f64 * 0.01,
                x[2],
                x[8],
                x_lqr[2],
                x_lqr[8]
            );
        }
    }

    println!(
        "\nMPC saturated its thrust bounds on {saturated_steps} steps (knowingly, via the\nslack projection); raw LQR demanded infeasible thrust on {lqr_violations} steps."
    );
    println!(
        "final altitude error: MPC {:+.4} m, clipped LQR {:+.4} m",
        x[2], x_lqr[2]
    );
    println!("solves not reporting `converged`: {unconverged} of 400");
    assert!(x[2].abs() < 0.05, "MPC failed to land");
    Ok(())
}
